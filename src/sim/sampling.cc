/**
 * @file
 * Systematic sampling: detailed windows + functional fast-forward.
 */

#include "sim/sampling.hh"

#include <algorithm>
#include <cmath>

#include "obs/trace.hh"
#include "util/logging.hh"

namespace drisim::sim
{

namespace
{

/**
 * Retire/cycle broadcast batch during fast-forward. A multiple of
 * the fast model's retire batch so sense-interval arithmetic sees
 * the same boundary pattern at any window split.
 */
constexpr InstCount kFfBatch = 4096;

/**
 * Fast-forward @p count instructions functionally: the i-cache sees
 * one access per fetch block (taken control breaks the block run,
 * as in both CPU models), the d-cache sees every Load/Store so its
 * contents stay warm for the next detailed window, and the attached
 * sinks see retirement and extrapolated cycles so resize/decay/
 * drowsy intervals keep ticking.
 *
 * @return instructions actually consumed (< count iff stream ended)
 */
InstCount
fastForward(Core &core, MemoryLevel *icache, MemoryLevel *dcache,
            InstrStream &stream, InstCount count, double cpi,
            unsigned fetchBlockBytes)
{
    InstCount done = 0;
    InstCount batch = 0;
    Addr lastBlock = kInvalidAddr;
    Instr instr;

    auto flush = [&]() {
        if (batch == 0)
            return;
        core.broadcastRetire(batch);
        core.broadcastCycles(static_cast<Cycles>(
            std::llround(cpi * static_cast<double>(batch))));
        batch = 0;
    };

    while (done < count && stream.next(instr)) {
        const Addr block = instr.pc / fetchBlockBytes;
        if (block != lastBlock) {
            icache->access(instr.pc, AccessType::InstFetch);
            lastBlock = block;
        }
        if (isControl(instr.op) && instr.taken)
            lastBlock = kInvalidAddr;
        if (dcache && isMem(instr.op))
            dcache->access(instr.memAddr,
                           instr.op == OpClass::Store
                               ? AccessType::Store
                               : AccessType::Load);
        ++done;
        if (++batch == kFfBatch)
            flush();
    }
    flush();
    return done;
}

} // namespace

CoreStats
runSampled(Core &core, MemoryLevel *icache, MemoryLevel *dcache,
           InstrStream &stream, InstCount maxInstrs,
           const SamplingConfig &config, unsigned fetchBlockBytes)
{
    drisim_assert(config.detailedWindow > 0 &&
                      config.period > config.detailedWindow,
                  "sampling needs 0 < window < period");
    drisim_assert(icache != nullptr, "sampling needs an i-cache");

    InstCount remaining = maxInstrs;
    InstCount ffInstrs = 0;
    Cycles ffCycles = 0;

    // Each skip is costed trapezoidally from the two detailed
    // windows that bracket it: the head window alone overestimates
    // during warm-up phases (CPI is still falling when the skip
    // starts), and averaging in the next window halves that bias.
    // The final cost of a skip is therefore only known once the
    // *following* window completes; `pendingSkip` carries the
    // not-yet-costed instruction count across the loop.
    InstCount pendingSkip = 0;
    double prevCpi = 0.0;

    while (remaining > 0) {
        // Detailed window at the head of the period.
        const InstCount window =
            std::min(config.detailedWindow, remaining);
        const CoreStats pre = core.stats();
        CoreStats post;
        {
            obs::ScopedSpan span(obs::trace(), "sample",
                                 "detailed-window");
            post = core.run(stream, window);
        }
        const InstCount ran = post.instructions - pre.instructions;
        remaining -= ran;

        const double cpi =
            ran == 0 ? prevCpi
                     : static_cast<double>(post.cycles - pre.cycles) /
                           static_cast<double>(ran);
        if (pendingSkip > 0) {
            ffCycles += static_cast<Cycles>(std::llround(
                0.5 * (prevCpi + cpi) *
                static_cast<double>(pendingSkip)));
            pendingSkip = 0;
        }
        prevCpi = cpi;
        if (ran < window)
            break; // stream drained mid-window

        const InstCount skip = std::min(
            config.period - config.detailedWindow, remaining);
        if (skip == 0)
            continue;
        // Sinks (resize/decay/drowsy intervals) need cycle
        // broadcasts *during* the skip, so fast-forward ticks them
        // with the head window's CPI; the reported total applies
        // the trapezoidal correction once the next window lands.
        InstCount done = 0;
        {
            obs::ScopedSpan span(obs::trace(), "sample",
                                 "fast-forward");
            done = fastForward(core, icache, dcache, stream, skip,
                               cpi, fetchBlockBytes);
        }
        ffInstrs += done;
        pendingSkip = done;
        remaining -= done;
        if (done < skip)
            break; // stream drained mid-skip
    }
    if (pendingSkip > 0)
        ffCycles += static_cast<Cycles>(std::llround(
            prevCpi * static_cast<double>(pendingSkip)));

    const CoreStats detailed = core.stats();
    CoreStats total;
    total.instructions = detailed.instructions + ffInstrs;
    total.cycles = detailed.cycles + ffCycles;
    return total;
}

} // namespace drisim::sim
