/**
 * @file
 * Type-tagged checkpoint serialization and the on-disk blob store.
 */

#include "sim/checkpoint.hh"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace drisim::sim
{

namespace
{

// One tag byte per value so reader/writer drift is caught at the
// first out-of-order access.
constexpr char kTagU64 = 'U';
constexpr char kTagI64 = 'I';
constexpr char kTagF64 = 'D';
constexpr char kTagBool = 'B';
constexpr char kTagString = 'S';
constexpr char kTagOpen = '(';
constexpr char kTagClose = ')';

constexpr char kStoreMagic[] = "DRCK2\n";
constexpr std::size_t kStoreMagicLen = sizeof(kStoreMagic) - 1;

std::atomic<std::uint64_t> g_saves{0};
std::atomic<std::uint64_t> g_restores{0};

} // namespace

// ---------------------------------------------------------------
// CheckpointWriter
// ---------------------------------------------------------------

void
CheckpointWriter::raw64(std::uint64_t v)
{
    // Fixed little-endian, independent of host order.
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
CheckpointWriter::putU64(std::uint64_t v)
{
    buf_.push_back(kTagU64);
    raw64(v);
}

void
CheckpointWriter::putI64(std::int64_t v)
{
    buf_.push_back(kTagI64);
    raw64(static_cast<std::uint64_t>(v));
}

void
CheckpointWriter::putF64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    buf_.push_back(kTagF64);
    raw64(bits);
}

void
CheckpointWriter::putBool(bool v)
{
    buf_.push_back(kTagBool);
    buf_.push_back(v ? '\1' : '\0');
}

void
CheckpointWriter::putString(std::string_view s)
{
    buf_.push_back(kTagString);
    raw64(s.size());
    buf_.append(s.data(), s.size());
}

void
CheckpointWriter::beginSection(std::string_view name)
{
    buf_.push_back(kTagOpen);
    raw64(name.size());
    buf_.append(name.data(), name.size());
    ++depth_;
}

void
CheckpointWriter::endSection()
{
    if (depth_ == 0)
        throw CheckpointError("endSection with no open section");
    buf_.push_back(kTagClose);
    --depth_;
}

const std::string &
CheckpointWriter::bytes() const
{
    if (depth_ != 0)
        throw CheckpointError("bytes() with unclosed section");
    return buf_;
}

// ---------------------------------------------------------------
// CheckpointReader
// ---------------------------------------------------------------

CheckpointReader::CheckpointReader(std::string bytes)
    : buf_(std::move(bytes))
{}

char
CheckpointReader::takeTag()
{
    if (pos_ >= buf_.size())
        throw CheckpointError("unexpected end of stream");
    return buf_[pos_++];
}

void
CheckpointReader::expectTag(char want)
{
    const char got = takeTag();
    if (got != want)
        throw CheckpointError(std::string("expected tag '") + want +
                              "', found '" + got + "'");
}

std::uint64_t
CheckpointReader::raw64()
{
    if (buf_.size() - pos_ < 8)
        throw CheckpointError("truncated 64-bit value");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(buf_[pos_ + i]))
             << (8 * i);
    pos_ += 8;
    return v;
}

std::string
CheckpointReader::takeBytes(std::uint64_t n)
{
    if (buf_.size() - pos_ < n)
        throw CheckpointError("truncated byte string");
    std::string s = buf_.substr(pos_, n);
    pos_ += n;
    return s;
}

std::uint64_t
CheckpointReader::getU64()
{
    expectTag(kTagU64);
    return raw64();
}

std::int64_t
CheckpointReader::getI64()
{
    expectTag(kTagI64);
    return static_cast<std::int64_t>(raw64());
}

double
CheckpointReader::getF64()
{
    expectTag(kTagF64);
    const std::uint64_t bits = raw64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

bool
CheckpointReader::getBool()
{
    expectTag(kTagBool);
    if (pos_ >= buf_.size())
        throw CheckpointError("truncated bool");
    return buf_[pos_++] != '\0';
}

std::string
CheckpointReader::getString()
{
    expectTag(kTagString);
    return takeBytes(raw64());
}

void
CheckpointReader::beginSection(std::string_view name)
{
    expectTag(kTagOpen);
    const std::string found = takeBytes(raw64());
    if (found != name)
        throw CheckpointError("expected section '" +
                              std::string(name) + "', found '" +
                              found + "'");
}

void
CheckpointReader::endSection()
{
    expectTag(kTagClose);
}

// ---------------------------------------------------------------
// CheckpointStore
// ---------------------------------------------------------------

CheckpointCounters
checkpointCounters()
{
    CheckpointCounters c;
    c.saves = g_saves.load(std::memory_order_relaxed);
    c.restores = g_restores.load(std::memory_order_relaxed);
    return c;
}

std::uint64_t
fnv1a64(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
toHex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::uint64_t
fromHex64(std::string_view s)
{
    if (s.empty() || s.size() > 16)
        return 0;
    std::uint64_t v = 0;
    for (char c : s) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return 0;
    }
    return v;
}

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        throw CheckpointError("cannot create directory '" + dir_ +
                              "': " + ec.message());
}

std::string
CheckpointStore::pathFor(const std::string &key) const
{
    return dir_ + "/ck_" + toHex64(fnv1a64(key)) + ".bin";
}

bool
CheckpointStore::load(const std::string &key,
                      std::string &blobOut) const
{
    std::ifstream in(pathFor(key), std::ios::binary);
    if (!in)
        return false;
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    // Layout: magic, u64 key length, key bytes, u64 blob length,
    // u64 FNV-1a of blob, blob. Any mismatch — magic, key, length
    // (truncation), checksum (bit rot) — is a miss, never an answer.
    const auto readU64 = [&contents](std::size_t off) {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(contents[off + i]))
                 << (8 * i);
        return v;
    };
    if (contents.size() < kStoreMagicLen + 8)
        return false;
    if (contents.compare(0, kStoreMagicLen, kStoreMagic) != 0)
        return false;
    const std::uint64_t klen = readU64(kStoreMagicLen);
    const std::size_t keyOff = kStoreMagicLen + 8;
    if (klen != key.size() || contents.size() < keyOff + klen + 16)
        return false;
    if (contents.compare(keyOff, klen, key) != 0)
        return false; // hash collision or stale file: miss, not error
    const std::uint64_t blen = readU64(keyOff + klen);
    const std::uint64_t bsum = readU64(keyOff + klen + 8);
    const std::size_t blobOff = keyOff + klen + 16;
    if (contents.size() != blobOff + blen)
        return false; // truncated or padded: miss
    const std::string_view blob(contents.data() + blobOff, blen);
    if (fnv1a64(blob) != bsum)
        return false; // corrupted payload: miss
    blobOut.assign(blob);
    g_restores.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
CheckpointStore::save(const std::string &key,
                      const std::string &blob) const
{
    const std::string path = pathFor(key);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw CheckpointError("cannot write '" + tmp + "'");
        const auto writeU64 = [&out](std::uint64_t v) {
            for (int i = 0; i < 8; ++i) {
                const char b =
                    static_cast<char>((v >> (8 * i)) & 0xff);
                out.write(&b, 1);
            }
        };
        out.write(kStoreMagic,
                  static_cast<std::streamsize>(kStoreMagicLen));
        writeU64(key.size());
        out.write(key.data(),
                  static_cast<std::streamsize>(key.size()));
        writeU64(blob.size());
        writeU64(fnv1a64(blob));
        out.write(blob.data(),
                  static_cast<std::streamsize>(blob.size()));
        if (!out)
            throw CheckpointError("write failed for '" + tmp + "'");
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        throw CheckpointError("rename to '" + path +
                              "' failed: " + ec.message());
    g_saves.fetch_add(1, std::memory_order_relaxed);
}

} // namespace drisim::sim
