/**
 * @file
 * MSHR file: live-entry bookkeeping for non-blocking cache levels.
 */

#include "mem/mshr.hh"

#include "sim/checkpoint.hh"
#include "util/logging.hh"

namespace drisim
{

void
MshrFile::prune(Cycles now)
{
    // The file is tiny (a handful of registers); a linear
    // erase-compact beats any ordered structure here.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < live_.size(); ++i) {
        if (live_[i].fillAt > now)
            live_[kept++] = live_[i];
    }
    live_.resize(kept);
}

bool
MshrFile::find(Addr blockAddr, Cycles &fillAt) const
{
    for (const Entry &e : live_) {
        if (e.blockAddr == blockAddr) {
            fillAt = e.fillAt;
            return true;
        }
    }
    return false;
}

Cycles
MshrFile::earliestFillAt() const
{
    drisim_assert(!live_.empty(),
                  "earliestFillAt on an empty MSHR file");
    Cycles earliest = live_[0].fillAt;
    for (const Entry &e : live_)
        if (e.fillAt < earliest)
            earliest = e.fillAt;
    return earliest;
}

void
MshrFile::allocate(Addr blockAddr, Cycles fillAt)
{
    drisim_assert(!full(), "MSHR allocate with every register busy");
    live_.push_back({blockAddr, fillAt});
}

void
MshrFile::snapshotTo(sim::CheckpointWriter &w) const
{
    w.beginSection("mshr");
    w.putU64(live_.size());
    for (const Entry &e : live_) {
        w.putU64(e.blockAddr);
        w.putU64(e.fillAt);
    }
    w.endSection();
}

void
MshrFile::restoreFrom(sim::CheckpointReader &r)
{
    r.beginSection("mshr");
    const std::uint64_t n = r.getU64();
    if (n > entries_)
        throw sim::CheckpointError("MSHR occupancy exceeds file");
    live_.clear();
    live_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        Entry e;
        e.blockAddr = r.getU64();
        e.fillAt = r.getU64();
        live_.push_back(e);
    }
    r.endSection();
}

} // namespace drisim
