/**
 * @file
 * Miss Status Holding Registers: the bookkeeping that turns a
 * blocking cache level into a non-blocking one.
 *
 * Each live entry records one block whose fill is still in flight
 * (allocated on a primary miss, retired when the fill-completion
 * time passes). The owning cache consults the file on every access:
 *
 *  - a reference to a block with a live entry is a *secondary* miss
 *    and coalesces onto the outstanding fill (it waits only for the
 *    remaining fill time, not a fresh memory round trip);
 *  - a primary miss with every register busy is a *structural*
 *    stall: the access waits until the earliest outstanding fill
 *    frees a register.
 *
 * A file with zero entries is disabled and the owning cache keeps
 * its historical blocking behaviour bit-for-bit (the default; every
 * pre-existing golden runs this way). Entries are pruned lazily
 * against the requester's clock, so the structure stays valid
 * across the checkpoint seam (fill times are absolute cycles, and
 * the core's clock is serialized alongside).
 */

#ifndef DRISIM_MEM_MSHR_HH
#define DRISIM_MEM_MSHR_HH

#include <cstddef>
#include <vector>

#include "util/types.hh"

namespace drisim::sim
{
class CheckpointWriter;
class CheckpointReader;
} // namespace drisim::sim

namespace drisim
{

/** The MSHR file of one cache level. */
class MshrFile
{
  public:
    /** @param entries register count; 0 disables the file. */
    explicit MshrFile(unsigned entries) : entries_(entries) {}

    /** False means the owning cache models a blocking miss path. */
    bool enabled() const { return entries_ > 0; }

    unsigned entries() const { return entries_; }

    /** Live (in-flight) miss count. */
    std::size_t occupancy() const { return live_.size(); }

    /** Every register busy (only meaningful when enabled). */
    bool full() const { return live_.size() >= entries_; }

    /** Retire every entry whose fill completed at or before @p now. */
    void prune(Cycles now);

    /**
     * Look up an in-flight miss on @p blockAddr; fills @p fillAt
     * with its completion time when found. Call prune() first so
     * stale entries cannot match.
     */
    bool find(Addr blockAddr, Cycles &fillAt) const;

    /** Completion time of the earliest outstanding fill (the
     *  register a structural stall waits for). File must be
     *  non-empty. */
    Cycles earliestFillAt() const;

    /** Record a primary miss on @p blockAddr completing at
     *  @p fillAt. File must not be full. */
    void allocate(Addr blockAddr, Cycles fillAt);

    /** Drop every live entry (cache invalidation). */
    void clear() { live_.clear(); }

    /** Serialize live entries (sim/checkpoint.hh). */
    void snapshotTo(sim::CheckpointWriter &w) const;
    void restoreFrom(sim::CheckpointReader &r);

  private:
    struct Entry
    {
        Addr blockAddr = 0;
        Cycles fillAt = 0;
    };

    unsigned entries_;
    std::vector<Entry> live_;
};

} // namespace drisim

#endif // DRISIM_MEM_MSHR_HH
