/**
 * @file
 * The retirement/time broadcast interface between CPU models and
 * leakage-managed cache levels.
 *
 * Every leakage-control technique in the simulator is driven by the
 * same two signals the DRI controller already consumes: retired
 * instructions (sense/decay/drowsy intervals are counted in dynamic
 * instructions, so cache behaviour is identical on the detailed and
 * fast timing models) and elapsed cycles (leakage is a time
 * integral). Core keeps one list of RetireSinks and broadcasts both
 * signals to it; ResizableCache and the policy caches
 * (policy/leakage_policy.hh) implement the interface.
 */

#ifndef DRISIM_MEM_RETIRE_SINK_HH
#define DRISIM_MEM_RETIRE_SINK_HH

#include "util/types.hh"

namespace drisim
{

/** Receives retirement and cycle-advance notifications. */
class RetireSink
{
  public:
    virtual ~RetireSink() = default;

    /** @p n further instructions retired. */
    virtual void onRetire(InstCount n) = 0;

    /** @p delta further cycles elapsed. */
    virtual void onCycles(Cycles delta) = 0;
};

} // namespace drisim

#endif // DRISIM_MEM_RETIRE_SINK_HH
