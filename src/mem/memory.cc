/**
 * @file
 * MemoryLevel base plumbing and the main-memory terminal level.
 */

#include "mem/memory.hh"

#include "util/logging.hh"

namespace drisim
{

MainMemory::MainMemory(unsigned transferBytes, stats::StatGroup *parent)
    : transferBytes_(transferBytes),
      group_(parent, "mem"),
      accesses_(&group_, "accesses", "main memory accesses")
{
    drisim_assert(transferBytes % kChunkBytes == 0,
                  "transfer size must be a multiple of %u bytes",
                  kChunkBytes);
}

Cycles
MainMemory::transferLatency() const
{
    return kBaseLatency + kPerChunk * (transferBytes_ / kChunkBytes);
}

AccessResult
MainMemory::access(Addr, AccessType)
{
    ++accesses_;
    return {true, transferLatency()};
}

} // namespace drisim
