/**
 * @file
 * MemoryLevel base plumbing and the main-memory terminal level.
 */

#include "mem/memory.hh"

#include "util/logging.hh"

namespace drisim
{

MainMemory::MainMemory(unsigned transferBytes, stats::StatGroup *parent)
    : transferBytes_(transferBytes),
      group_(parent, "mem"),
      accesses_(&group_, "accesses", "main memory accesses"),
      reads_(&group_, "reads", "demand fills serviced"),
      writebacks_(&group_, "writebacks",
                  "writeback probes drained in background")
{
    drisim_assert(transferBytes % kChunkBytes == 0,
                  "transfer size must be a multiple of %u bytes",
                  kChunkBytes);
}

Cycles
MainMemory::transferLatency() const
{
    return kBaseLatency + kPerChunk * (transferBytes_ / kChunkBytes);
}

AccessResult
MainMemory::access(Addr, AccessType type)
{
    ++accesses_;
    if (type == AccessType::Store) {
        // A writeback probe from a dirty eviction: absorbed by the
        // write buffer and drained in the background, so it must
        // not pay (or be counted as) a full read transfer.
        ++writebacks_;
        return {true, 0};
    }
    ++reads_;
    return {true, transferLatency()};
}

} // namespace drisim
