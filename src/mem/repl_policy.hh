/**
 * @file
 * Replacement policies for set-associative caches.
 *
 * Table 1 specifies LRU for the 2-way L1 d-cache; the 4-way L2 and
 * 4-way DRI variants use LRU as well. Random is provided for
 * sensitivity studies.
 */

#ifndef DRISIM_MEM_REPL_POLICY_HH
#define DRISIM_MEM_REPL_POLICY_HH

#include <cstdint>
#include <span>

#include "mem/cache_blk.hh"

namespace drisim
{

/** Replacement policy selector. */
enum class ReplPolicy { LRU, Random };

/**
 * Pick the victim way within a set. Invalid ways win immediately;
 * otherwise LRU picks the smallest lastTouch and Random hashes the
 * provided tick for determinism.
 *
 * @param ways   the block frames of one set
 * @param policy which policy to apply
 * @param tick   a monotonically increasing value (for Random)
 * @return the victim way index
 */
unsigned selectVictim(std::span<const CacheBlk> ways, ReplPolicy policy,
                      std::uint64_t tick);

} // namespace drisim

#endif // DRISIM_MEM_REPL_POLICY_HH
