/**
 * @file
 * Assembles the Table 1 memory system: L1I (conventional or DRI),
 * L1D, unified L2 (conventional or DRI), main memory.
 */

#include "mem/hierarchy.hh"

#include "util/logging.hh"

namespace drisim
{

DriParams
HierarchyParams::defaultL2DriParams()
{
    DriParams p;
    // Geometry comes from the CacheParams at build time; only the
    // resize knobs below are meaningful defaults. The L2 sees far
    // fewer references per instruction than the L1, so its default
    // miss-bound is lower; the size-bound leaves a 16:1 range like
    // the paper's 64K:4K sweet spot.
    p.sizeBoundBytes = 64 * 1024;
    p.missBound = 50;
    p.senseInterval = 100 * 1000;
    return p;
}

DriParams
driParamsForLevel(const CacheParams &level, const DriParams &dri)
{
    DriParams p = dri;
    p.sizeBytes = level.sizeBytes;
    p.assoc = level.assoc;
    p.blockBytes = level.blockBytes;
    p.hitLatency = level.hitLatency;
    p.repl = level.repl;
    p.mshrs = level.mshrs;
    if (p.sizeBoundBytes > p.sizeBytes)
        p.sizeBoundBytes = p.sizeBytes;
    const std::uint64_t set_bytes =
        static_cast<std::uint64_t>(p.blockBytes) * p.assoc;
    if (p.sizeBoundBytes < set_bytes)
        p.sizeBoundBytes = set_bytes;
    return p;
}

Hierarchy::Hierarchy(const HierarchyParams &params,
                     stats::StatGroup *parent, bool buildConvL1i)
    : params_(params)
{
    if (params.dram.banked) {
        dram_ = std::make_unique<Dram>(params.dram,
                                       params.l2.blockBytes, parent);
        memLevel_ = dram_.get();
    } else {
        mem_ = std::make_unique<MainMemory>(params.l2.blockBytes,
                                            parent);
        memLevel_ = mem_.get();
    }
    if (params.l2Dri) {
        driL2_ = std::make_unique<ResizableCache>(
            driParamsForLevel(params.l2, params.l2DriParams),
            ResizePolicy::writeback(), memLevel_, parent, "dri_l2");
        l2Level_ = driL2_.get();
    } else {
        l2_ = std::make_unique<Cache>(params.l2, memLevel_, parent);
        l2Level_ = l2_.get();
    }
    l1d_ = std::make_unique<Cache>(params.l1d, l2Level_, parent);
    if (buildConvL1i) {
        convL1i_ = std::make_unique<Cache>(params.l1i, l2Level_,
                                           parent);
        l1i_ = convL1i_.get();
    }
}

MainMemory &
Hierarchy::mem()
{
    drisim_assert(mem_ != nullptr,
                  "hierarchy was built with banked DRAM; use "
                  "memLevel()/dram() or memAccesses()");
    return *mem_;
}

std::uint64_t
Hierarchy::memAccesses() const
{
    return mem_ ? mem_->accesses() : dram_->accesses();
}

std::uint64_t
Hierarchy::memReads() const
{
    return mem_ ? mem_->reads() : dram_->reads();
}

std::uint64_t
Hierarchy::memWritebacks() const
{
    return mem_ ? mem_->writebacks() : dram_->writebacks();
}

Cache &
Hierarchy::l2()
{
    drisim_assert(l2_ != nullptr,
                  "hierarchy was built with a DRI L2; use "
                  "convL2()/driL2()");
    return *l2_;
}

std::uint64_t
Hierarchy::l2Accesses() const
{
    return l2_ ? l2_->accesses() : driL2_->accesses();
}

std::uint64_t
Hierarchy::l2Misses() const
{
    return l2_ ? l2_->misses() : driL2_->misses();
}

double
Hierarchy::l2MissRate() const
{
    return l2_ ? l2_->missRate() : driL2_->missRate();
}

} // namespace drisim
