/**
 * @file
 * Assembles the Table 1 memory system: L1I (conventional or DRI),
 * L1D, unified L2, main memory.
 */

#include "mem/hierarchy.hh"

namespace drisim
{

Hierarchy::Hierarchy(const HierarchyParams &params,
                     stats::StatGroup *parent, bool buildConvL1i)
    : params_(params)
{
    mem_ = std::make_unique<MainMemory>(params.l2.blockBytes, parent);
    l2_ = std::make_unique<Cache>(params.l2, mem_.get(), parent);
    l1d_ = std::make_unique<Cache>(params.l1d, l2_.get(), parent);
    if (buildConvL1i) {
        convL1i_ = std::make_unique<Cache>(params.l1i, l2_.get(),
                                           parent);
        l1i_ = convL1i_.get();
    }
}

} // namespace drisim
