/**
 * @file
 * A conventional (fixed-size) cache level.
 *
 * Write policy: write-allocate, write-back. Dirty evictions are
 * counted as writeback traffic but are not charged on the access
 * latency path (write-buffer assumption), matching the paper's focus
 * on read/fetch latency.
 *
 * The access path exposes three protected hooks for per-line leakage
 * policies (policy/leakage_policy.hh): a wake-stall charge on hits
 * (drowsy lines pay a latency penalty on first touch), a fill
 * notification (per-line counters reset, power state restored) and a
 * victim-way limit (selective-ways gating allocates only in powered
 * ways). The defaults are no-ops, so a plain Cache is untouched.
 */

#ifndef DRISIM_MEM_CACHE_HH
#define DRISIM_MEM_CACHE_HH

#include <string>

#include "stats/stats.hh"
#include "util/types.hh"
#include "mem/directory.hh"
#include "mem/memory.hh"
#include "mem/mshr.hh"
#include "mem/tag_store.hh"

namespace drisim::sim
{
class CheckpointWriter;
class CheckpointReader;
} // namespace drisim::sim

namespace drisim
{

/** Static configuration of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * 1024;
    unsigned assoc = 1;
    unsigned blockBytes = 32;
    Cycles hitLatency = 1;
    ReplPolicy repl = ReplPolicy::LRU;
    /** MSHR entries; 0 keeps the historical blocking miss path. */
    unsigned mshrs = 0;
};

/**
 * A conventional cache backed by a lower MemoryLevel. When attached
 * to a coherence fabric (setCoherence) it participates as an MSI
 * client: fills and write upgrades consult the directory agent, and
 * incoming probes invalidate/downgrade lines (mem/directory.hh).
 */
class Cache : public MemoryLevel, public CoherenceClient
{
  public:
    /**
     * @param params geometry and latency
     * @param below  the next level (L2 or memory); may be nullptr
     *               for a standalone cache (misses then cost only
     *               hitLatency)
     * @param parent stats parent group
     */
    Cache(const CacheParams &params, MemoryLevel *below,
          stats::StatGroup *parent);

    AccessResult access(Addr addr, AccessType type) override
    {
        return accessTimed(addr, type, 0);
    }
    AccessResult accessAt(Addr addr, AccessType type,
                          Cycles now) override
    {
        return accessTimed(addr, type, now);
    }
    void invalidateAll() override;

    const CacheParams &params() const { return params_; }
    std::uint64_t numSets() const { return store_.numSets(); }
    unsigned offsetBits() const { return offsetBits_; }

    /** Block address (addr with the offset stripped). */
    Addr blockAddr(Addr addr) const { return addr >> offsetBits_; }

    /** Non-mutating containment probe (tests). */
    bool contains(Addr addr) const;

    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t writebacks() const { return writebacks_.value(); }
    double missRate() const;

    /** Secondary misses coalesced onto an in-flight fill. */
    std::uint64_t mshrCoalesced() const
    {
        return mshrCoalesced_.value();
    }
    /** Primary misses that found every MSHR busy. */
    std::uint64_t mshrFullStalls() const
    {
        return mshrFullStalls_.value();
    }
    /** Cycles spent waiting for an MSHR to free. */
    std::uint64_t mshrFullStallCycles() const
    {
        return mshrFullStallCycles_.value();
    }
    /** High-water mark of live MSHR entries. */
    std::uint64_t mshrPeakOccupancy() const
    {
        return mshrPeak_.value();
    }

    /**
     * Attach this cache to a coherence fabric as @p core's private
     * cache. Fills/upgrades then charge directory latency and
     * incoming probes are honoured. Never called for shared levels
     * (the L2 sits below the coherence point).
     */
    void setCoherence(CoherenceAgent *agent, unsigned core)
    {
        coherence_ = agent;
        coherenceCore_ = core;
    }

    // CoherenceClient: probes from the directory controller.
    CoherenceProbe coherenceInvalidate(Addr addr,
                                       unsigned bytes) override;
    CoherenceProbe coherenceDowngrade(Addr addr,
                                      unsigned bytes) override;

    /** Lines dropped by coherence invalidation probes. */
    std::uint64_t coherenceInvalidations() const
    {
        return coherenceInvalidations_.value();
    }
    /** Lines demoted Modified -> Shared by downgrade probes. */
    std::uint64_t coherenceDowngrades() const
    {
        return coherenceDowngrades_.value();
    }
    /** Dirty lines flushed below to answer probes. */
    std::uint64_t coherenceWritebacks() const
    {
        return coherenceWritebacks_.value();
    }

    /** Zero the statistics (not the contents). */
    void resetStats() { group_.resetAll(); }

    stats::StatGroup &statGroup() { return group_; }

    /** Serialize contents + stats (sim/checkpoint.hh). Restore
     *  requires an identically-configured cache. */
    virtual void snapshotTo(sim::CheckpointWriter &w) const;
    virtual void restoreFrom(sim::CheckpointReader &r);

  protected:
    // Per-line leakage-policy hooks (no-ops for a plain cache).

    /**
     * Extra latency charged when (@p set, @p way) hits — a drowsy
     * line's wake stall. Called before replacement state updates.
     */
    virtual Cycles onLineHit(std::uint64_t set, unsigned way)
    {
        (void)set;
        (void)way;
        return 0;
    }

    /** A miss filled (@p set, @p way): reset per-line policy state. */
    virtual void onLineFill(std::uint64_t set, unsigned way)
    {
        (void)set;
        (void)way;
    }

    /**
     * Ways eligible for allocation ([0, allocWays()) of each set).
     * Selective-ways gating narrows this; way 0 is always eligible.
     */
    virtual unsigned allocWays() const { return store_.assoc(); }

    /**
     * A coherence probe landed on (@p set, @p way) — @p invalidate
     * distinguishes invalidation from downgrade. Returns the stall
     * the probe costs at this cache (a drowsy line's wake); called
     * before the frame is flushed/invalidated.
     */
    virtual Cycles onLineCoherenceEvent(std::uint64_t set,
                                        unsigned way, bool invalidate)
    {
        (void)set;
        (void)way;
        (void)invalidate;
        return 0;
    }

    std::uint64_t indexOf(Addr blockAddr) const;

    /** The shared body of access()/accessAt(); see cache.cc. */
    AccessResult accessTimed(Addr addr, AccessType type, Cycles now);

    CacheParams params_;
    MemoryLevel *below_;
    unsigned offsetBits_;
    TagStore store_;
    MshrFile mshr_;
    CoherenceAgent *coherence_ = nullptr;
    unsigned coherenceCore_ = 0;

    stats::StatGroup group_;
    stats::Scalar accesses_;
    stats::Scalar misses_;
    stats::Scalar fetchAccesses_;
    stats::Scalar loadAccesses_;
    stats::Scalar storeAccesses_;
    stats::Scalar writebacks_;
    stats::Scalar evictions_;
    stats::Scalar mshrCoalesced_;
    stats::Scalar mshrFullStalls_;
    stats::Scalar mshrFullStallCycles_;
    stats::Scalar mshrPeak_;
    stats::Scalar coherenceInvalidations_;
    stats::Scalar coherenceDowngrades_;
    stats::Scalar coherenceWritebacks_;
};

} // namespace drisim

#endif // DRISIM_MEM_CACHE_HH
