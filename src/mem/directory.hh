/**
 * @file
 * MSI coherence over the shared L2: a sparse directory plus the
 * controller that routes invalidation/downgrade probes to the
 * private L1s.
 *
 * The coherence point sits between the private L1I/L1D caches and
 * the shared L2 (system/cmp.hh). The directory is sparse — a bounded
 * table of entries co-located with the L2, not a full backing map —
 * so filling a block whose entry was capacity-evicted forces an
 * eviction-invalidation of every prior holder, exactly the
 * conservative behaviour of real sparse directories. Coherence
 * granularity is the L2 block size; an L1 with smaller blocks
 * invalidates every line it holds inside the granule.
 *
 * Probe latency model: each remote core contacted costs one
 * msgLatency on the requester's critical path (the requester waits
 * for the acks), plus whatever extra cycles the probed cache reports
 * — a drowsy line must be woken before it can answer a probe, and
 * that wake stall is part of the coherence cost the 2001 single-core
 * paper never modelled (docs/DESIGN.md, "Coherence substitutions").
 */

#ifndef DRISIM_MEM_DIRECTORY_HH
#define DRISIM_MEM_DIRECTORY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/types.hh"

namespace drisim::sim
{
class CheckpointWriter;
class CheckpointReader;
} // namespace drisim::sim

namespace drisim
{

/** Static configuration of the coherence layer (off by default). */
struct CoherenceConfig
{
    bool enabled = false;
    /** Sparse-directory capacity; LRU entry is evicted when full,
     *  invalidating every holder of its block. */
    std::uint64_t directoryEntries = 256;
    /** One-way probe/ack latency per remote core contacted. */
    Cycles msgLatency = 3;
};

/** What a probed cache reports back to the controller. */
struct CoherenceProbe
{
    /** Stall the probe added to the requester's critical path
     *  (e.g. a drowsy line's wake before it could be snooped). */
    Cycles extraCycles = 0;
    /** The probed cache actually held (part of) the granule. */
    bool wasPresent = false;
    /** A dirty copy was flushed to the shared level. */
    bool wasDirty = false;
};

/**
 * A private cache that can receive coherence probes. Probes carry a
 * byte range so a granule larger than the client's block covers
 * every enclosed line.
 */
class CoherenceClient
{
  public:
    virtual ~CoherenceClient() = default;

    /** Drop [addr, addr+bytes): flush dirty data, invalidate. */
    virtual CoherenceProbe coherenceInvalidate(Addr addr,
                                               unsigned bytes) = 0;

    /** Demote [addr, addr+bytes) to Shared: flush dirty data, keep
     *  the line readable. */
    virtual CoherenceProbe coherenceDowngrade(Addr addr,
                                              unsigned bytes) = 0;
};

/**
 * The requester-side interface a coherent cache calls into on fills
 * and write upgrades (implemented by SharedL2Bus, which owns the
 * controller). Returns the extra cycles on the requester's path.
 */
class CoherenceAgent
{
  public:
    virtual ~CoherenceAgent() = default;

    /**
     * Core @p core filled @p addr; @p exclusive for a store miss
     * (needs Modified), otherwise a read fill (Shared).
     */
    virtual Cycles coherentFill(unsigned core, Addr addr,
                                bool exclusive) = 0;

    /** Core @p core stores to a line it holds Shared. */
    virtual Cycles coherentUpgrade(unsigned core, Addr addr) = 0;
};

/**
 * Bounded owner/sharer table. Entries are found by block number
 * (addr / granule); when full, the least-recently-touched entry is
 * evicted (deterministic: ties break on the lowest slot index).
 */
class SparseDirectory
{
  public:
    struct Entry
    {
        Addr block = kInvalidAddr;
        /** Bitmask over cores holding the block. */
        std::uint64_t sharers = 0;
        /** Core holding the block Modified, or -1. */
        int owner = -1;
        std::uint64_t lastTouch = 0;
        bool valid = false;
    };

    explicit SparseDirectory(std::uint64_t maxEntries);

    Entry *find(Addr block);

    /**
     * Allocate an entry for @p block (which must not be present).
     * When the table is full the LRU victim's prior contents are
     * returned through @p evictedOut (valid == true) so the caller
     * can invalidate its holders; otherwise evictedOut->valid is
     * false.
     */
    Entry &allocate(Addr block, Entry *evictedOut);

    /** Mark @p e most-recently used. */
    void touch(Entry &e) { e.lastTouch = ++tick_; }

    std::uint64_t maxEntries() const { return maxEntries_; }
    std::uint64_t entriesInUse() const { return index_.size(); }
    std::uint64_t allocations() const { return allocations_; }
    /** Entries evicted for capacity (each forced invalidations). */
    std::uint64_t capacityEvictions() const
    {
        return capacityEvictions_;
    }

    /** Serialize entries + clock (sim/checkpoint.hh). Restore
     *  requires an identical capacity. */
    void snapshotTo(sim::CheckpointWriter &w) const;
    void restoreFrom(sim::CheckpointReader &r);

  private:
    std::uint64_t maxEntries_;
    std::uint64_t tick_ = 0;
    std::uint64_t allocations_ = 0;
    std::uint64_t capacityEvictions_ = 0;
    std::vector<Entry> slots_;
    /** block -> slot, kept in lockstep with slots_. */
    std::unordered_map<Addr, std::size_t> index_;
};

/**
 * The MSI protocol engine: consults the sparse directory, probes the
 * registered per-core clients, and attributes message latency and
 * event counts to cores. All returned cycles land on the requester's
 * critical path.
 */
class CoherenceController
{
  public:
    /** Per-core attribution of coherence activity. */
    struct CoreStats
    {
        /** Probes that invalidated a line this core held. */
        std::uint64_t invalidationsReceived = 0;
        /** Invalidations this core's requests forced elsewhere. */
        std::uint64_t invalidationsCaused = 0;
        /** Probes that demoted this core's Modified line. */
        std::uint64_t downgradesReceived = 0;
        /** Dirty lines this core flushed to answer probes. */
        std::uint64_t coherenceWritebacks = 0;
        /** Message cycles charged to this core's requests. */
        std::uint64_t messageCycles = 0;
    };

    CoherenceController(const CoherenceConfig &cfg, unsigned cores,
                        unsigned granuleBytes);

    /** Register a probe target for @p core (its L1I and L1D). */
    void addClient(unsigned core, CoherenceClient *client);

    /** See CoherenceAgent::coherentFill. */
    Cycles fill(unsigned core, Addr addr, bool exclusive);

    /** See CoherenceAgent::coherentUpgrade. */
    Cycles upgrade(unsigned core, Addr addr);

    unsigned cores() const
    {
        return static_cast<unsigned>(stats_.size());
    }
    unsigned granuleBytes() const { return granuleBytes_; }
    const CoreStats &coreStats(unsigned core) const;
    const SparseDirectory &directory() const { return dir_; }

    /** Invalidation probes sent, over all cores. */
    std::uint64_t invalidationsSent() const;
    /** Downgrade probes sent, over all cores. */
    std::uint64_t downgradesSent() const;

    /** Serialize directory + per-core attribution. */
    void snapshotTo(sim::CheckpointWriter &w) const;
    void restoreFrom(sim::CheckpointReader &r);

  private:
    /** Probe every client of @p target; attribute to @p requester. */
    Cycles probeCore(unsigned target, unsigned requester, Addr block,
                     bool invalidate);
    /** Invalidate every holder of @p e (directory eviction or a
     *  write by @p requester); clears sharers/owner. */
    Cycles invalidateHolders(const SparseDirectory::Entry &e,
                             unsigned requester, bool spareRequester);

    CoherenceConfig cfg_;
    unsigned granuleBytes_;
    std::vector<std::vector<CoherenceClient *>> clients_;
    std::vector<CoreStats> stats_;
    SparseDirectory dir_;
};

} // namespace drisim

#endif // DRISIM_MEM_DIRECTORY_HH
