/**
 * @file
 * Sparse directory + MSI controller for the coherent CMP.
 */

#include "mem/directory.hh"

#include "util/logging.hh"

namespace drisim
{

SparseDirectory::SparseDirectory(std::uint64_t maxEntries)
    : maxEntries_(maxEntries)
{
    drisim_assert(maxEntries > 0,
                  "directory needs at least one entry");
    slots_.resize(maxEntries);
    index_.reserve(maxEntries);
}

SparseDirectory::Entry *
SparseDirectory::find(Addr block)
{
    auto it = index_.find(block);
    return it == index_.end() ? nullptr : &slots_[it->second];
}

SparseDirectory::Entry &
SparseDirectory::allocate(Addr block, Entry *evictedOut)
{
    drisim_assert(index_.find(block) == index_.end(),
                  "allocate of a present directory block");
    evictedOut->valid = false;
    ++allocations_;

    std::size_t slot = slots_.size();
    if (index_.size() < maxEntries_) {
        // A free slot exists; take the lowest one.
        for (std::size_t s = 0; s < slots_.size(); ++s) {
            if (!slots_[s].valid) {
                slot = s;
                break;
            }
        }
    } else {
        // Capacity eviction: least-recently-touched entry,
        // ties broken on the lowest slot index (deterministic).
        std::uint64_t best = ~std::uint64_t{0};
        for (std::size_t s = 0; s < slots_.size(); ++s) {
            if (slots_[s].lastTouch < best) {
                best = slots_[s].lastTouch;
                slot = s;
            }
        }
        *evictedOut = slots_[slot];
        index_.erase(slots_[slot].block);
        ++capacityEvictions_;
    }
    drisim_assert(slot < slots_.size(), "no directory slot found");

    Entry &e = slots_[slot];
    e.block = block;
    e.sharers = 0;
    e.owner = -1;
    e.lastTouch = ++tick_;
    e.valid = true;
    index_.emplace(block, slot);
    return e;
}

CoherenceController::CoherenceController(const CoherenceConfig &cfg,
                                         unsigned cores,
                                         unsigned granuleBytes)
    : cfg_(cfg), granuleBytes_(granuleBytes), clients_(cores),
      stats_(cores), dir_(cfg.directoryEntries)
{
    drisim_assert(cores >= 1 && cores <= 64,
                  "coherence supports 1..64 cores (sharer bitmask)");
    drisim_assert(granuleBytes > 0, "granule must be positive");
}

void
CoherenceController::addClient(unsigned core,
                               CoherenceClient *client)
{
    drisim_assert(core < clients_.size(), "client core out of range");
    clients_[core].push_back(client);
}

const CoherenceController::CoreStats &
CoherenceController::coreStats(unsigned core) const
{
    drisim_assert(core < stats_.size(), "core out of range");
    return stats_[core];
}

std::uint64_t
CoherenceController::invalidationsSent() const
{
    std::uint64_t n = 0;
    for (const CoreStats &s : stats_)
        n += s.invalidationsReceived;
    return n;
}

std::uint64_t
CoherenceController::downgradesSent() const
{
    std::uint64_t n = 0;
    for (const CoreStats &s : stats_)
        n += s.downgradesReceived;
    return n;
}

Cycles
CoherenceController::probeCore(unsigned target, unsigned requester,
                               Addr block, bool invalidate)
{
    const Addr addr = block * granuleBytes_;
    Cycles extra = cfg_.msgLatency;
    stats_[requester].messageCycles += cfg_.msgLatency;
    bool present = false;
    bool dirty = false;
    for (CoherenceClient *c : clients_[target]) {
        const CoherenceProbe p =
            invalidate ? c->coherenceInvalidate(addr, granuleBytes_)
                       : c->coherenceDowngrade(addr, granuleBytes_);
        extra += p.extraCycles;
        present = present || p.wasPresent;
        dirty = dirty || p.wasDirty;
    }
    if (present) {
        if (invalidate) {
            ++stats_[target].invalidationsReceived;
            ++stats_[requester].invalidationsCaused;
        } else {
            ++stats_[target].downgradesReceived;
        }
    }
    if (dirty)
        ++stats_[target].coherenceWritebacks;
    return extra;
}

Cycles
CoherenceController::invalidateHolders(
    const SparseDirectory::Entry &e, unsigned requester,
    bool spareRequester)
{
    Cycles extra = 0;
    for (unsigned c = 0; c < clients_.size(); ++c) {
        const bool holds = ((e.sharers >> c) & 1) != 0 ||
                           e.owner == static_cast<int>(c);
        if (!holds)
            continue;
        if (spareRequester && c == requester)
            continue;
        extra += probeCore(c, requester, e.block, true);
    }
    return extra;
}

Cycles
CoherenceController::fill(unsigned core, Addr addr, bool exclusive)
{
    drisim_assert(core < clients_.size(), "fill core out of range");
    const Addr block = addr / granuleBytes_;
    Cycles extra = 0;

    SparseDirectory::Entry *e = dir_.find(block);
    if (!e) {
        SparseDirectory::Entry victim;
        SparseDirectory::Entry &fresh = dir_.allocate(block, &victim);
        // A sparse directory cannot track an untracked holder: the
        // capacity-evicted entry's holders are force-invalidated
        // (even the requester — its copy is of a different block).
        if (victim.valid)
            extra += invalidateHolders(victim, core,
                                       /*spareRequester=*/false);
        e = &fresh;
    }
    dir_.touch(*e);

    if (exclusive) {
        extra += invalidateHolders(*e, core, /*spareRequester=*/true);
        e->sharers = std::uint64_t{1} << core;
        e->owner = static_cast<int>(core);
    } else {
        if (e->owner >= 0 && e->owner != static_cast<int>(core)) {
            extra += probeCore(static_cast<unsigned>(e->owner), core,
                               block, /*invalidate=*/false);
            e->owner = -1;
        }
        e->sharers |= std::uint64_t{1} << core;
    }
    return extra;
}

Cycles
CoherenceController::upgrade(unsigned core, Addr addr)
{
    drisim_assert(core < clients_.size(),
                  "upgrade core out of range");
    const Addr block = addr / granuleBytes_;
    Cycles extra = 0;

    SparseDirectory::Entry *e = dir_.find(block);
    if (!e) {
        // A holder's entry should exist (eviction would have
        // invalidated the line); be conservative and re-allocate.
        SparseDirectory::Entry victim;
        SparseDirectory::Entry &fresh = dir_.allocate(block, &victim);
        if (victim.valid)
            extra += invalidateHolders(victim, core,
                                       /*spareRequester=*/false);
        e = &fresh;
    }
    dir_.touch(*e);
    extra += invalidateHolders(*e, core, /*spareRequester=*/true);
    e->sharers = std::uint64_t{1} << core;
    e->owner = static_cast<int>(core);
    return extra;
}

} // namespace drisim
