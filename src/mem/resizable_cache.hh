/**
 * @file
 * The reusable dynamically-resizable cache layer.
 *
 * The paper applies gated-Vdd resizing to the L1 i-cache only, but
 * the machinery — a size mask over a tag store, a miss-bound/
 * size-bound controller sampled at sense-interval boundaries, and
 * time-integrated active-size bookkeeping — is level-agnostic.
 * This class owns all of it once, so the L1 i-cache, the L1 d-cache
 * extension and the DRI-enabled L2 differ only in their access-type
 * restrictions and in two policy bits:
 *
 *  - `writebackDirty`: whether dirty blocks must reach the lower
 *    level before their set's supply is gated (mandatory for any
 *    level that holds modified data);
 *  - `remapOnUpsize`: whether blocks whose set index changes under a
 *    wider mask must be evicted on upsizing (mandatory where stale
 *    aliases are not harmless, i.e. everywhere except the read-only
 *    i-stream).
 *
 * Used directly, the class is a resizable unified write-back,
 * write-allocate cache (the DRI L2 configuration); DriICache and
 * DriDCache derive from it to add their restrictions.
 */

#ifndef DRISIM_MEM_RESIZABLE_CACHE_HH
#define DRISIM_MEM_RESIZABLE_CACHE_HH

#include <cstdint>
#include <string>

#include "core/dri_params.hh"
#include "core/resize_controller.hh"
#include "core/size_mask.hh"
#include "mem/directory.hh"
#include "mem/memory.hh"
#include "mem/mshr.hh"
#include "mem/retire_sink.hh"
#include "mem/tag_store.hh"
#include "stats/stats.hh"

namespace drisim::sim
{
class CheckpointWriter;
class CheckpointReader;
} // namespace drisim::sim

namespace drisim
{

/** Behavioural knobs distinguishing the resizable-cache flavours. */
struct ResizePolicy
{
    /** Write dirty blocks back before gating or remapping them. */
    bool writebackDirty = true;
    /** Evict index-changing blocks when the mask widens. */
    bool remapOnUpsize = true;

    /** The read-only i-stream tolerates aliases and has no dirt. */
    static constexpr ResizePolicy icache() { return {false, false}; }
    /** Any level holding modified data needs both protections. */
    static constexpr ResizePolicy writeback() { return {true, true}; }
};

/**
 * A dynamically-resizable cache level (gated-Vdd semantics: sets
 * above the current size keep no state and leak nothing).
 */
class ResizableCache : public MemoryLevel, public RetireSink,
                       public CoherenceClient
{
  public:
    /**
     * @param params    geometry plus all resize knobs
     * @param policy    flavour bits (see ResizePolicy)
     * @param below     next level; may be nullptr (standalone)
     * @param parent    stats parent
     * @param groupName stats group name (e.g. "dri_l2")
     */
    ResizableCache(const DriParams &params, const ResizePolicy &policy,
                   MemoryLevel *below, stats::StatGroup *parent,
                   const std::string &groupName);

    /** Unified write-back, write-allocate access (any type). */
    AccessResult access(Addr addr, AccessType type) override;

    /** Timed flavour: orders the access against in-flight MSHRs. */
    AccessResult accessAt(Addr addr, AccessType type,
                          Cycles now) override
    {
        return accessImpl(addr, type, now);
    }

    /**
     * Account @p n retired instructions; at sense-interval
     * boundaries runs the resize decision. Returns true if the
     * cache resized.
     */
    bool retireInstructions(InstCount n);

    /** RetireSink: retirement broadcast from the core. */
    void onRetire(InstCount n) override { retireInstructions(n); }

    /** RetireSink: cycle-advance broadcast from the core. */
    void onCycles(Cycles delta) override { integrateCycles(delta); }

    /** Fraction of sets currently powered. */
    double activeFraction() const override;

    /** Current capacity in bytes. */
    std::uint64_t currentSizeBytes() const;

    std::uint64_t currentSets() const { return mask_.numSets(); }

    /** Write back everything dirty (if the policy says so), then
     *  invalidate. */
    void invalidateAll() override;

    const DriParams &params() const { return params_; }
    const ResizePolicy &policy() const { return policy_; }
    const SizeMask &sizeMask() const { return mask_; }
    const ResizeController &controller() const { return controller_; }

    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    double missRate() const;

    std::uint64_t upsizes() const { return upsizes_.value(); }
    std::uint64_t downsizes() const { return downsizes_.value(); }
    std::uint64_t holds() const { return holds_.value(); }

    /** Valid blocks destroyed by gating their sets off. */
    std::uint64_t blocksLost() const { return blocksLost_.value(); }

    /** Dirty blocks written back because their set was gated off
     *  or their index was remapped by a resize. */
    std::uint64_t resizeWritebacks() const
    {
        return resizeWritebacks_.value();
    }

    /** Ordinary dirty-eviction writebacks. */
    std::uint64_t evictionWritebacks() const
    {
        return evictionWritebacks_.value();
    }

    /** Secondary misses coalesced onto an in-flight fill. */
    std::uint64_t mshrCoalesced() const
    {
        return mshrCoalesced_.value();
    }
    /** Primary misses that found every MSHR busy. */
    std::uint64_t mshrFullStalls() const
    {
        return mshrFullStalls_.value();
    }
    /** Cycles spent waiting for an MSHR to free. */
    std::uint64_t mshrFullStallCycles() const
    {
        return mshrFullStallCycles_.value();
    }
    /** High-water mark of live MSHR entries. */
    std::uint64_t mshrPeakOccupancy() const
    {
        return mshrPeak_.value();
    }

    /** Blocks invalidated because upsizing changed their index. */
    std::uint64_t remapInvalidations() const
    {
        return remapInvalidations_.value();
    }

    /** Attach to a coherence fabric as @p core's private cache
     *  (mem/directory.hh); see Cache::setCoherence. */
    void setCoherence(CoherenceAgent *agent, unsigned core)
    {
        coherence_ = agent;
        coherenceCore_ = core;
    }

    // CoherenceClient: probes from the directory controller.
    CoherenceProbe coherenceInvalidate(Addr addr,
                                       unsigned bytes) override;
    CoherenceProbe coherenceDowngrade(Addr addr,
                                      unsigned bytes) override;

    /** Lines dropped by coherence invalidation probes. */
    std::uint64_t coherenceInvalidations() const
    {
        return coherenceInvalidations_.value();
    }
    /** Lines demoted Modified -> Shared by downgrade probes. */
    std::uint64_t coherenceDowngrades() const
    {
        return coherenceDowngrades_.value();
    }
    /** Fills re-fetching a block a probe invalidated from the same
     *  frame — the coherence refetch traffic PolicyActivity reports. */
    std::uint64_t coherenceRefetches() const
    {
        return coherenceRefetches_.value();
    }

    /**
     * Time-integral bookkeeping: the run loop adds the cycles spent
     * since the last call; the integral of the active fraction over
     * cycles gives the average active size (paper's "average cache
     * size ... averaged over the benchmark execution time").
     */
    void integrateCycles(Cycles delta);

    /** Integral of activeSets over cycles (set-cycles). */
    double activeSetCycles() const { return activeSetCycles_; }

    /** Cycles integrated so far. */
    Cycles integratedCycles() const { return integratedCycles_; }

    /** Average active fraction over the integrated run. */
    double averageActiveFraction() const;

    /** Number of sets whose supply is currently gated off. */
    std::uint64_t gatedSets() const
    {
        return mask_.maxSets() - mask_.numSets();
    }

    /**
     * Verification hook: true iff no reachable frame holds a block
     * whose current-mask index differs from the set it sits in (the
     * invariant remapOnUpsize maintains; alias-tolerant caches may
     * legitimately violate it after upsizing).
     */
    bool mappingConsistent() const;

    void resetStats();

    /** Serialize mask + controller + contents + integrals + stats
     *  (sim/checkpoint.hh). Restore requires identical params.
     *  Covers derived flavours (their extra stats register in the
     *  same group and are walked with it). */
    void snapshotTo(sim::CheckpointWriter &w) const;
    void restoreFrom(sim::CheckpointReader &r);

  protected:
    void applyDecision(ResizeDecision decision);
    void resizeTo(std::uint64_t newSets);
    void writebackBlock(const CacheBlk &blk);

    /** The access body shared by every flavour (after type checks). */
    AccessResult accessImpl(Addr addr, AccessType type,
                            Cycles now = 0);

    DriParams params_;
    ResizePolicy policy_;
    MemoryLevel *below_;
    SizeMask mask_;
    ResizeController controller_;
    TagStore store_;
    MshrFile mshr_;
    CoherenceAgent *coherence_ = nullptr;
    unsigned coherenceCore_ = 0;
    /** Frames whose block a coherence probe invalidated; the next
     *  fill of such a frame is a coherence refetch. */
    std::vector<char> coherenceLost_;

    double activeSetCycles_ = 0.0;
    Cycles integratedCycles_ = 0;

    stats::StatGroup group_;
    stats::Scalar accesses_;
    stats::Scalar misses_;
    stats::Scalar upsizes_;
    stats::Scalar downsizes_;
    stats::Scalar holds_;
    stats::Scalar blocksLost_;
    stats::Scalar resizeWritebacks_;
    stats::Scalar evictionWritebacks_;
    stats::Scalar remapInvalidations_;
    stats::Scalar mshrCoalesced_;
    stats::Scalar mshrFullStalls_;
    stats::Scalar mshrFullStallCycles_;
    stats::Scalar mshrPeak_;
    stats::Scalar coherenceInvalidations_;
    stats::Scalar coherenceDowngrades_;
    stats::Scalar coherenceWritebacks_;
    stats::Scalar coherenceRefetches_;
};

} // namespace drisim

#endif // DRISIM_MEM_RESIZABLE_CACHE_HH
