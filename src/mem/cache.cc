/**
 * @file
 * Conventional fixed-size cache level (write-allocate, write-back).
 */

#include "mem/cache.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace drisim
{

Cache::Cache(const CacheParams &params, MemoryLevel *below,
             stats::StatGroup *parent)
    : params_(params),
      below_(below),
      offsetBits_(exactLog2(params.blockBytes)),
      store_(params.sizeBytes /
                 (static_cast<std::uint64_t>(params.blockBytes) *
                  params.assoc),
             params.assoc, params.repl),
      mshr_(params.mshrs),
      group_(parent, params.name),
      accesses_(&group_, "accesses", "total accesses"),
      misses_(&group_, "misses", "total misses"),
      fetchAccesses_(&group_, "fetch_accesses", "instruction fetches"),
      loadAccesses_(&group_, "load_accesses", "data loads"),
      storeAccesses_(&group_, "store_accesses", "data stores"),
      writebacks_(&group_, "writebacks", "dirty blocks written back"),
      evictions_(&group_, "evictions", "valid blocks evicted"),
      mshrCoalesced_(&group_, "mshr_coalesced",
                     "secondary misses merged onto in-flight fills"),
      mshrFullStalls_(&group_, "mshr_full_stalls",
                      "primary misses finding every MSHR busy"),
      mshrFullStallCycles_(&group_, "mshr_full_stall_cycles",
                           "cycles stalled waiting for a free MSHR"),
      mshrPeak_(&group_, "mshr_peak", "peak live MSHR entries"),
      coherenceInvalidations_(&group_, "coherence_invalidations",
                              "lines dropped by coherence probes"),
      coherenceDowngrades_(&group_, "coherence_downgrades",
                           "lines demoted Modified -> Shared"),
      coherenceWritebacks_(&group_, "coherence_writebacks",
                           "dirty lines flushed to answer probes")
{
    drisim_assert(isPowerOf2(params.sizeBytes) &&
                  isPowerOf2(params.blockBytes),
                  "%s: size and block size must be powers of two",
                  params.name.c_str());
    drisim_assert(params.sizeBytes >=
                  static_cast<std::uint64_t>(params.blockBytes) *
                  params.assoc,
                  "%s: size too small for one set", params.name.c_str());
}

std::uint64_t
Cache::indexOf(Addr block_addr) const
{
    return block_addr & (store_.numSets() - 1);
}

bool
Cache::contains(Addr addr) const
{
    const Addr ba = blockAddr(addr);
    return store_.findWay(indexOf(ba), ba) != TagStore::kNoWay;
}

AccessResult
Cache::accessTimed(Addr addr, AccessType type, Cycles now)
{
    ++accesses_;
    switch (type) {
      case AccessType::InstFetch: ++fetchAccesses_; break;
      case AccessType::Load:      ++loadAccesses_; break;
      case AccessType::Store:     ++storeAccesses_; break;
    }

    if (mshr_.enabled())
        mshr_.prune(now);

    const Addr ba = blockAddr(addr);
    const std::uint64_t set = indexOf(ba);

    int way = store_.findWay(set, ba);
    if (way != TagStore::kNoWay) {
        const Cycles wake =
            onLineHit(set, static_cast<unsigned>(way));
        store_.touch(set, static_cast<unsigned>(way));
        Cycles latency = params_.hitLatency + wake;
        if (type == AccessType::Store) {
            store_.markDirty(set, static_cast<unsigned>(way));
            // A store to a line held Shared needs exclusive
            // ownership: the directory invalidates other copies
            // before this write may retire (write upgrade).
            if (coherence_ &&
                store_.coherenceState(
                    set, static_cast<unsigned>(way)) !=
                    CoherenceState::Modified) {
                latency += coherence_->coherentUpgrade(
                    coherenceCore_, ba << offsetBits_);
                store_.setCoherenceState(
                    set, static_cast<unsigned>(way),
                    CoherenceState::Modified);
            }
        }
        // The block was inserted at miss time; if its fill is still
        // in flight this is a secondary miss that coalesces onto
        // the outstanding MSHR and waits out the remaining fill.
        Cycles fill_at = 0;
        if (mshr_.enabled() && mshr_.find(ba, fill_at)) {
            ++mshrCoalesced_;
            latency += fill_at - now;
        }
        return {true, latency};
    }

    ++misses_;
    // A primary miss with every register busy stalls until the
    // earliest outstanding fill frees one (structural hazard).
    Cycles stall = 0;
    if (mshr_.enabled() && mshr_.full()) {
        const Cycles free_at = mshr_.earliestFillAt();
        if (free_at > now)
            stall = free_at - now;
        mshr_.prune(now + stall);
        ++mshrFullStalls_;
        mshrFullStallCycles_ += stall;
    }
    Cycles latency = params_.hitLatency + stall;
    if (below_)
        latency += below_->accessAt(ba << offsetBits_,
                                    type == AccessType::Store
                                        ? AccessType::Load // fill read
                                        : type,
                                    now + stall)
                       .latency;
    if (mshr_.enabled()) {
        mshr_.allocate(ba, now + latency);
        if (mshr_.occupancy() > mshrPeak_.value())
            mshrPeak_.set(mshr_.occupancy());
    }

    unsigned filled = 0;
    const CacheBlk evicted = store_.insert(set, ba, allocWays(),
                                           &filled);
    onLineFill(set, filled);
    if (evicted.valid) {
        ++evictions_;
        if (evicted.dirty) {
            ++writebacks_;
            // Writeback traffic is off the critical path (write
            // buffer); count it at the lower level without latency.
            if (below_)
                below_->access(evicted.blockAddr << offsetBits_,
                               AccessType::Store);
        }
    }
    if (type == AccessType::Store) {
        int w = store_.findWay(set, ba);
        drisim_assert(w != TagStore::kNoWay, "fill lost its block");
        store_.markDirty(set, static_cast<unsigned>(w));
    }
    if (coherence_) {
        // Register the fill with the directory: a store miss takes
        // the granule Modified (remote copies invalidated), a
        // load/fetch fill takes it Shared (a remote Modified owner
        // is downgraded). Probe latency lands on this miss.
        latency += coherence_->coherentFill(
            coherenceCore_, ba << offsetBits_,
            type == AccessType::Store);
        const int w = store_.findWay(set, ba);
        if (w != TagStore::kNoWay)
            store_.setCoherenceState(set, static_cast<unsigned>(w),
                                     type == AccessType::Store
                                         ? CoherenceState::Modified
                                         : CoherenceState::Shared);
    }
    return {false, latency};
}

CoherenceProbe
Cache::coherenceInvalidate(Addr addr, unsigned bytes)
{
    CoherenceProbe res;
    for (Addr a = addr; a < addr + bytes; a += params_.blockBytes) {
        const Addr ba = blockAddr(a);
        const std::uint64_t set = indexOf(ba);
        const int way = store_.findWay(set, ba);
        if (way == TagStore::kNoWay)
            continue;
        res.wasPresent = true;
        res.extraCycles +=
            onLineCoherenceEvent(set, static_cast<unsigned>(way),
                                 /*invalidate=*/true);
        if (store_.set(set)[static_cast<unsigned>(way)].dirty) {
            res.wasDirty = true;
            ++writebacks_;
            ++coherenceWritebacks_;
            // Flushed like a dirty eviction: counted below, off the
            // victim's latency path (write-buffer assumption).
            if (below_)
                below_->access(ba << offsetBits_, AccessType::Store);
        }
        ++coherenceInvalidations_;
        store_.invalidate(set, static_cast<unsigned>(way));
    }
    return res;
}

CoherenceProbe
Cache::coherenceDowngrade(Addr addr, unsigned bytes)
{
    CoherenceProbe res;
    for (Addr a = addr; a < addr + bytes; a += params_.blockBytes) {
        const Addr ba = blockAddr(a);
        const std::uint64_t set = indexOf(ba);
        const int way = store_.findWay(set, ba);
        if (way == TagStore::kNoWay)
            continue;
        res.wasPresent = true;
        res.extraCycles +=
            onLineCoherenceEvent(set, static_cast<unsigned>(way),
                                 /*invalidate=*/false);
        if (store_.set(set)[static_cast<unsigned>(way)].dirty) {
            res.wasDirty = true;
            ++writebacks_;
            ++coherenceWritebacks_;
            if (below_)
                below_->access(ba << offsetBits_, AccessType::Store);
            store_.clearDirty(set, static_cast<unsigned>(way));
        }
        ++coherenceDowngrades_;
        store_.setCoherenceState(set, static_cast<unsigned>(way),
                                 CoherenceState::Shared);
    }
    return res;
}

void
Cache::invalidateAll()
{
    store_.invalidateAll();
    mshr_.clear();
}

double
Cache::missRate() const
{
    return accesses_.value() == 0
               ? 0.0
               : static_cast<double>(misses_.value()) /
                     static_cast<double>(accesses_.value());
}

} // namespace drisim
