/**
 * @file
 * Victim selection for each replacement policy.
 */

#include "mem/repl_policy.hh"

#include "util/logging.hh"

namespace drisim
{

unsigned
selectVictim(std::span<const CacheBlk> ways, ReplPolicy policy,
             std::uint64_t tick)
{
    drisim_assert(!ways.empty(), "victim selection on an empty set");

    for (unsigned w = 0; w < ways.size(); ++w) {
        if (!ways[w].valid)
            return w;
    }

    switch (policy) {
      case ReplPolicy::LRU: {
        unsigned victim = 0;
        for (unsigned w = 1; w < ways.size(); ++w) {
            if (ways[w].lastTouch < ways[victim].lastTouch)
                victim = w;
        }
        return victim;
      }
      case ReplPolicy::Random: {
        // SplitMix-style hash of the tick for reproducible "random".
        std::uint64_t z = tick + 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        return static_cast<unsigned>(z % ways.size());
      }
    }
    drisim_panic("unknown replacement policy");
}

} // namespace drisim
