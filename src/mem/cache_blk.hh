/**
 * @file
 * One cache block frame.
 */

#ifndef DRISIM_MEM_CACHE_BLK_HH
#define DRISIM_MEM_CACHE_BLK_HH

#include "util/types.hh"

namespace drisim
{

/**
 * MSI coherence state of a private-cache line (system/cmp.hh's
 * directory protocol; see mem/directory.hh). Invalid for every line
 * of a cache that is not attached to a coherence fabric — the field
 * is inert outside coherent CMP runs, so single-core behaviour is
 * untouched.
 */
enum class CoherenceState : std::uint8_t
{
    Invalid = 0,
    Shared = 1,
    Modified = 2,
};

/**
 * A block frame. The simulator stores the full block address as the
 * tag; this is behaviourally identical to storing the architectural
 * tag bits (the set index supplies the remaining bits) and lets the
 * DRI i-cache keep "resizing tag bits" for every possible size
 * without per-size tag arithmetic (paper Section 2.1).
 */
struct CacheBlk
{
    /** Block address (addr >> offsetBits); kInvalidAddr if invalid. */
    Addr blockAddr = kInvalidAddr;

    /** Valid bit. */
    bool valid = false;

    /** Dirty bit (d-cache / L2 writeback support). */
    bool dirty = false;

    /** Replacement timestamp (LRU) or insertion order. */
    std::uint64_t lastTouch = 0;

    /** MSI state (coherent CMP runs only; Invalid otherwise). */
    CoherenceState cstate = CoherenceState::Invalid;

    void
    invalidate()
    {
        blockAddr = kInvalidAddr;
        valid = false;
        dirty = false;
        lastTouch = 0;
        cstate = CoherenceState::Invalid;
    }
};

} // namespace drisim

#endif // DRISIM_MEM_CACHE_BLK_HH
