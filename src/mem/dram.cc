/**
 * @file
 * Banked, queued DRAM: per-bank row buffers and service queues
 * behind the MemoryLevel seam.
 */

#include "mem/dram.hh"

#include "sim/checkpoint.hh"
#include "util/logging.hh"

namespace drisim
{

Dram::Dram(const DramParams &params, unsigned transferBytes,
           stats::StatGroup *parent)
    : params_(params),
      transferBytes_(transferBytes),
      banks_(params.banks),
      bankRowHits_(params.banks, 0),
      bankRowMisses_(params.banks, 0),
      group_(parent, "dram"),
      accesses_(&group_, "accesses", "DRAM accesses (all types)"),
      reads_(&group_, "reads", "demand fills serviced"),
      writebacks_(&group_, "writebacks",
                  "writeback probes drained in background"),
      rowHits_(&group_, "row_hits", "fills hitting the open row"),
      rowMisses_(&group_, "row_misses",
                 "fills opening a new row"),
      queueFullEvents_(&group_, "queue_full",
                       "fills arriving at a full bank queue")
{
    drisim_assert(params.banks >= 1, "DRAM needs at least one bank");
    drisim_assert(params.queueDepth >= 1,
                  "bank queue depth must be positive");
    drisim_assert(params.rowBytes > 0, "row size must be positive");
    drisim_assert(transferBytes % MainMemory::kChunkBytes == 0,
                  "transfer size must be a multiple of %u bytes",
                  MainMemory::kChunkBytes);
}

AccessResult
Dram::accessAt(Addr addr, AccessType type, Cycles now)
{
    ++accesses_;
    if (type == AccessType::Store) {
        // A writeback probe: drained through the write buffer in
        // the background. Counted, but it occupies no bank, leaves
        // the row buffer alone and costs the requester nothing —
        // demand-fill timing is writeback-invariant by construction.
        ++writebacks_;
        return {true, 0};
    }
    ++reads_;

    Bank &bank = banks_[bankOf(addr)];
    while (!bank.inflight.empty() && bank.inflight.front() <= now)
        bank.inflight.pop_front();
    if (bank.inflight.size() >= params_.queueDepth)
        ++queueFullEvents_;

    // One fill in service at a time per bank: start after whatever
    // is already queued (completion times are nondecreasing, so the
    // back is the bank-free time).
    Cycles start = now;
    if (!bank.inflight.empty() && bank.inflight.back() > start)
        start = bank.inflight.back();

    const Addr row = addr / params_.rowBytes;
    const bool row_hit = bank.openRow == row;
    const unsigned b = bankOf(addr);
    if (row_hit) {
        ++rowHits_;
        ++bankRowHits_[b];
    } else {
        ++rowMisses_;
        ++bankRowMisses_[b];
    }
    bank.openRow = row;

    // Table 1 keeps the transfer term; the row buffer replaces the
    // flat 80-cycle base (rowMissLatency defaults to exactly it).
    const Cycles service =
        (row_hit ? params_.rowHitLatency : params_.rowMissLatency) +
        MainMemory::kPerChunk *
            (transferBytes_ / MainMemory::kChunkBytes);
    const Cycles done = start + service;
    busyCycles_ += service;

    // Entries completing before our service began have drained by
    // the time this fill occupies the bank.
    while (!bank.inflight.empty() && bank.inflight.front() <= start)
        bank.inflight.pop_front();
    bank.inflight.push_back(done);

    return {true, done - now};
}

void
Dram::snapshotTo(sim::CheckpointWriter &w) const
{
    w.beginSection("dram");
    w.putU64(banks_.size());
    for (const Bank &b : banks_) {
        w.putU64(b.openRow);
        w.putU64(b.inflight.size());
        for (const Cycles c : b.inflight)
            w.putU64(c);
    }
    for (const std::uint64_t h : bankRowHits_)
        w.putU64(h);
    for (const std::uint64_t m : bankRowMisses_)
        w.putU64(m);
    w.putU64(busyCycles_);
    group_.snapshotTo(w);
    w.endSection();
}

void
Dram::restoreFrom(sim::CheckpointReader &r)
{
    r.beginSection("dram");
    if (r.getU64() != banks_.size())
        throw sim::CheckpointError("DRAM bank count mismatch");
    for (Bank &b : banks_) {
        b.openRow = r.getU64();
        b.inflight.clear();
        const std::uint64_t n = r.getU64();
        for (std::uint64_t i = 0; i < n; ++i)
            b.inflight.push_back(r.getU64());
    }
    for (std::uint64_t &h : bankRowHits_)
        h = r.getU64();
    for (std::uint64_t &m : bankRowMisses_)
        m = r.getU64();
    busyCycles_ = r.getU64();
    group_.restoreFrom(r);
    r.endSection();
}

} // namespace drisim
