/**
 * @file
 * Set/way tag array with per-block state and resizing-tag support.
 */

#include "mem/tag_store.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace drisim
{

TagStore::TagStore(std::uint64_t numSets, unsigned assoc,
                   ReplPolicy policy)
    : numSets_(numSets), assoc_(assoc), policy_(policy),
      blocks_(numSets * assoc)
{
    drisim_assert(numSets > 0 && isPowerOf2(numSets),
                  "numSets must be a power of two");
    drisim_assert(assoc > 0, "associativity must be positive");
}

std::span<CacheBlk>
TagStore::mutableSet(std::uint64_t set)
{
    drisim_assert(set < numSets_, "set %llu out of range",
                  static_cast<unsigned long long>(set));
    return {blocks_.data() + set * assoc_, assoc_};
}

std::span<const CacheBlk>
TagStore::set(std::uint64_t set) const
{
    drisim_assert(set < numSets_, "set %llu out of range",
                  static_cast<unsigned long long>(set));
    return {blocks_.data() + set * assoc_, assoc_};
}

int
TagStore::findWay(std::uint64_t set, Addr blockAddr) const
{
    auto ways = this->set(set);
    for (unsigned w = 0; w < assoc_; ++w) {
        if (ways[w].valid && ways[w].blockAddr == blockAddr)
            return static_cast<int>(w);
    }
    return kNoWay;
}

void
TagStore::touch(std::uint64_t set, unsigned way)
{
    mutableSet(set)[way].lastTouch = ++tick_;
}

CacheBlk
TagStore::insert(std::uint64_t set, Addr blockAddr)
{
    return insert(set, blockAddr, assoc_, nullptr);
}

CacheBlk
TagStore::insert(std::uint64_t set, Addr blockAddr,
                 unsigned waysLimit, unsigned *wayOut)
{
    drisim_assert(waysLimit >= 1 && waysLimit <= assoc_,
                  "waysLimit %u outside [1, %u]", waysLimit, assoc_);
    auto ways = mutableSet(set);
    unsigned victim = selectVictim({ways.data(), waysLimit},
                                   policy_, ++tick_);
    CacheBlk evicted = ways[victim];
    ways[victim].blockAddr = blockAddr;
    ways[victim].valid = true;
    ways[victim].dirty = false;
    ways[victim].lastTouch = tick_;
    if (wayOut)
        *wayOut = victim;
    return evicted;
}

void
TagStore::markDirty(std::uint64_t set, unsigned way)
{
    mutableSet(set)[way].dirty = true;
}

void
TagStore::clearDirty(std::uint64_t set, unsigned way)
{
    mutableSet(set)[way].dirty = false;
}

void
TagStore::setCoherenceState(std::uint64_t set, unsigned way,
                            CoherenceState s)
{
    mutableSet(set)[way].cstate = s;
}

void
TagStore::invalidate(std::uint64_t set, unsigned way)
{
    mutableSet(set)[way].invalidate();
}

void
TagStore::invalidateSet(std::uint64_t set)
{
    for (auto &blk : mutableSet(set))
        blk.invalidate();
}

void
TagStore::invalidateAll()
{
    for (auto &blk : blocks_)
        blk.invalidate();
}

std::uint64_t
TagStore::validCount() const
{
    std::uint64_t n = 0;
    for (const auto &blk : blocks_) {
        if (blk.valid)
            ++n;
    }
    return n;
}

} // namespace drisim
