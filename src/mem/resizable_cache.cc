/**
 * @file
 * Shared resize machinery: masked indexing, sense-interval resize
 * steps, gating/writeback/remap handling and active-size integrals.
 */

#include "mem/resizable_cache.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace drisim
{

ResizableCache::ResizableCache(const DriParams &params,
                               const ResizePolicy &policy,
                               MemoryLevel *below,
                               stats::StatGroup *parent,
                               const std::string &groupName)
    : params_(params),
      policy_(policy),
      below_(below),
      mask_(makeSizeMask(params)),
      controller_(params),
      store_(mask_.maxSets(), params.assoc, params.repl),
      mshr_(params.mshrs),
      group_(parent, groupName),
      accesses_(&group_, "accesses", "cache accesses"),
      misses_(&group_, "misses", "cache misses"),
      upsizes_(&group_, "upsizes", "interval decisions: upsize"),
      downsizes_(&group_, "downsizes", "interval decisions: downsize"),
      holds_(&group_, "holds", "interval decisions: hold"),
      blocksLost_(&group_, "blocks_lost",
                  "valid blocks destroyed by gating sets off"),
      resizeWritebacks_(&group_, "resize_writebacks",
                        "dirty blocks written back by resizing"),
      evictionWritebacks_(&group_, "eviction_writebacks",
                          "dirty blocks written back by eviction"),
      remapInvalidations_(&group_, "remap_invalidations",
                          "blocks invalidated because upsizing "
                          "changed their set index"),
      mshrCoalesced_(&group_, "mshr_coalesced",
                     "secondary misses merged onto in-flight fills"),
      mshrFullStalls_(&group_, "mshr_full_stalls",
                      "primary misses finding every MSHR busy"),
      mshrFullStallCycles_(&group_, "mshr_full_stall_cycles",
                           "cycles stalled waiting for a free MSHR"),
      mshrPeak_(&group_, "mshr_peak", "peak live MSHR entries"),
      coherenceInvalidations_(&group_, "coherence_invalidations",
                              "lines dropped by coherence probes"),
      coherenceDowngrades_(&group_, "coherence_downgrades",
                           "lines demoted Modified -> Shared"),
      coherenceWritebacks_(&group_, "coherence_writebacks",
                           "dirty lines flushed to answer probes"),
      coherenceRefetches_(&group_, "coherence_refetches",
                          "fills replacing probe-invalidated lines")
{
    coherenceLost_.assign(
        static_cast<std::size_t>(mask_.maxSets()) * params_.assoc, 0);
}

void
ResizableCache::writebackBlock(const CacheBlk &blk)
{
    if (below_)
        below_->access(blk.blockAddr << mask_.offsetBits(),
                       AccessType::Store);
}

AccessResult
ResizableCache::access(Addr addr, AccessType type)
{
    return accessImpl(addr, type);
}

AccessResult
ResizableCache::accessImpl(Addr addr, AccessType type, Cycles now)
{
    ++accesses_;

    if (mshr_.enabled())
        mshr_.prune(now);

    const Addr ba = addr >> mask_.offsetBits();
    const std::uint64_t set = ba & mask_.mask();

    int way = store_.findWay(set, ba);
    if (way != TagStore::kNoWay) {
        store_.touch(set, static_cast<unsigned>(way));
        Cycles latency = params_.hitLatency;
        if (type == AccessType::Store) {
            store_.markDirty(set, static_cast<unsigned>(way));
            // Write upgrade: a Shared line needs exclusive
            // ownership before the store may retire.
            if (coherence_ &&
                store_.coherenceState(
                    set, static_cast<unsigned>(way)) !=
                    CoherenceState::Modified) {
                latency += coherence_->coherentUpgrade(
                    coherenceCore_, ba << mask_.offsetBits());
                store_.setCoherenceState(
                    set, static_cast<unsigned>(way),
                    CoherenceState::Modified);
            }
        }
        // The block was inserted at miss time; an in-flight fill
        // makes this a secondary miss coalescing onto its MSHR.
        Cycles fill_at = 0;
        if (mshr_.enabled() && mshr_.find(ba, fill_at)) {
            ++mshrCoalesced_;
            latency += fill_at - now;
        }
        return {true, latency};
    }

    ++misses_;
    controller_.recordMiss();
    // Structural hazard: with every register busy the miss waits
    // for the earliest outstanding fill to free one.
    Cycles stall = 0;
    if (mshr_.enabled() && mshr_.full()) {
        const Cycles free_at = mshr_.earliestFillAt();
        if (free_at > now)
            stall = free_at - now;
        mshr_.prune(now + stall);
        ++mshrFullStalls_;
        mshrFullStallCycles_ += stall;
    }
    Cycles latency = params_.hitLatency + stall;
    // Fills are reads: fetches propagate as fetches, loads and
    // stores (write-allocate) as loads.
    const AccessType fill = type == AccessType::InstFetch
                                ? AccessType::InstFetch
                                : AccessType::Load;
    if (below_)
        latency += below_->accessAt(ba << mask_.offsetBits(), fill,
                                    now + stall)
                       .latency;
    if (mshr_.enabled()) {
        mshr_.allocate(ba, now + latency);
        if (mshr_.occupancy() > mshrPeak_.value())
            mshrPeak_.set(mshr_.occupancy());
    }

    unsigned filled = 0;
    const CacheBlk evicted =
        store_.insert(set, ba, store_.assoc(), &filled);
    if (evicted.valid && evicted.dirty) {
        ++evictionWritebacks_;
        writebackBlock(evicted);
    }
    {
        const std::size_t fi =
            static_cast<std::size_t>(set) * params_.assoc + filled;
        if (coherenceLost_[fi]) {
            coherenceLost_[fi] = 0;
            ++coherenceRefetches_;
        }
    }
    if (type == AccessType::Store) {
        int w = store_.findWay(set, ba);
        drisim_assert(w != TagStore::kNoWay, "fill lost its block");
        store_.markDirty(set, static_cast<unsigned>(w));
    }
    if (coherence_) {
        // Register the fill with the directory (see Cache's access
        // path); probe latency lands on this miss.
        latency += coherence_->coherentFill(
            coherenceCore_, ba << mask_.offsetBits(),
            type == AccessType::Store);
        const int w = store_.findWay(set, ba);
        if (w != TagStore::kNoWay)
            store_.setCoherenceState(set, static_cast<unsigned>(w),
                                     type == AccessType::Store
                                         ? CoherenceState::Modified
                                         : CoherenceState::Shared);
    }
    return {false, latency};
}

CoherenceProbe
ResizableCache::coherenceInvalidate(Addr addr, unsigned bytes)
{
    CoherenceProbe res;
    const unsigned block = params_.blockBytes;
    for (Addr a = addr; a < addr + bytes; a += block) {
        const Addr ba = a >> mask_.offsetBits();
        const std::uint64_t set = ba & mask_.mask();
        const int way = store_.findWay(set, ba);
        if (way == TagStore::kNoWay)
            continue;
        res.wasPresent = true;
        if (store_.set(set)[static_cast<unsigned>(way)].dirty) {
            res.wasDirty = true;
            ++coherenceWritebacks_;
            if (policy_.writebackDirty)
                writebackBlock(
                    store_.set(set)[static_cast<unsigned>(way)]);
        }
        ++coherenceInvalidations_;
        coherenceLost_[static_cast<std::size_t>(set) *
                           params_.assoc +
                       static_cast<unsigned>(way)] = 1;
        store_.invalidate(set, static_cast<unsigned>(way));
    }
    return res;
}

CoherenceProbe
ResizableCache::coherenceDowngrade(Addr addr, unsigned bytes)
{
    CoherenceProbe res;
    const unsigned block = params_.blockBytes;
    for (Addr a = addr; a < addr + bytes; a += block) {
        const Addr ba = a >> mask_.offsetBits();
        const std::uint64_t set = ba & mask_.mask();
        const int way = store_.findWay(set, ba);
        if (way == TagStore::kNoWay)
            continue;
        res.wasPresent = true;
        if (store_.set(set)[static_cast<unsigned>(way)].dirty) {
            res.wasDirty = true;
            ++coherenceWritebacks_;
            if (policy_.writebackDirty)
                writebackBlock(
                    store_.set(set)[static_cast<unsigned>(way)]);
            store_.clearDirty(set, static_cast<unsigned>(way));
        }
        ++coherenceDowngrades_;
        store_.setCoherenceState(set, static_cast<unsigned>(way),
                                 CoherenceState::Shared);
    }
    return res;
}

bool
ResizableCache::retireInstructions(InstCount n)
{
    bool resized = false;
    // A large n can cross several interval boundaries; honour each.
    while (controller_.recordInstructions(n)) {
        n = 0;
        ResizeDecision d = controller_.endInterval(mask_.atMinimum(),
                                                   mask_.atMaximum());
        std::uint64_t before = mask_.numSets();
        applyDecision(d);
        resized |= mask_.numSets() != before;
    }
    return resized;
}

void
ResizableCache::applyDecision(ResizeDecision decision)
{
    const std::uint64_t sets = mask_.numSets();
    switch (decision) {
      case ResizeDecision::Hold:
        ++holds_;
        controller_.noteApplied(ResizeDecision::Hold);
        return;
      case ResizeDecision::Downsize: {
        std::uint64_t target = sets / params_.divisibility;
        if (target < mask_.minSets())
            target = mask_.minSets();
        if (target == sets) {
            ++holds_;
            controller_.noteApplied(ResizeDecision::Hold);
            return;
        }
        ++downsizes_;
        resizeTo(target);
        controller_.noteApplied(ResizeDecision::Downsize);
        return;
      }
      case ResizeDecision::Upsize: {
        std::uint64_t target = sets * params_.divisibility;
        if (target > mask_.maxSets())
            target = mask_.maxSets();
        if (target == sets) {
            ++holds_;
            controller_.noteApplied(ResizeDecision::Hold);
            return;
        }
        ++upsizes_;
        resizeTo(target);
        controller_.noteApplied(ResizeDecision::Upsize);
        return;
      }
    }
}

void
ResizableCache::resizeTo(std::uint64_t newSets)
{
    const std::uint64_t old_sets = mask_.numSets();

    if (newSets < old_sets) {
        // Gating the supply destroys the state of the disabled
        // sets: dirty blocks must reach the lower level first.
        for (std::uint64_t s = newSets; s < old_sets; ++s) {
            for (unsigned w = 0; w < store_.assoc(); ++w) {
                const CacheBlk &blk = store_.set(s)[w];
                if (!blk.valid)
                    continue;
                ++blocksLost_;
                if (policy_.writebackDirty && blk.dirty) {
                    ++resizeWritebacks_;
                    writebackBlock(blk);
                }
            }
            store_.invalidateSet(s);
        }
        mask_.setNumSets(newSets);
        return;
    }

    // Upsizing: newly enabled sets were gated and are already
    // invalid. Where stale aliases are not harmless (any level
    // holding data), evict every surviving block whose set index
    // changes under the wider mask; the read-only i-stream skips
    // this (Section 2.2).
    mask_.setNumSets(newSets);
    if (!policy_.remapOnUpsize)
        return;
    const std::uint64_t new_mask = mask_.mask();
    for (std::uint64_t s = 0; s < old_sets; ++s) {
        for (unsigned w = 0; w < store_.assoc(); ++w) {
            const CacheBlk blk = store_.set(s)[w];
            if (!blk.valid)
                continue;
            if ((blk.blockAddr & new_mask) != s) {
                if (policy_.writebackDirty && blk.dirty) {
                    ++resizeWritebacks_;
                    writebackBlock(blk);
                }
                store_.invalidate(s, w);
                ++remapInvalidations_;
            }
        }
    }
}

double
ResizableCache::activeFraction() const
{
    return static_cast<double>(mask_.numSets()) /
           static_cast<double>(mask_.maxSets());
}

std::uint64_t
ResizableCache::currentSizeBytes() const
{
    return mask_.numSets() *
           static_cast<std::uint64_t>(params_.blockBytes) *
           params_.assoc;
}

void
ResizableCache::invalidateAll()
{
    if (policy_.writebackDirty) {
        for (std::uint64_t s = 0; s < mask_.numSets(); ++s) {
            for (unsigned w = 0; w < store_.assoc(); ++w) {
                const CacheBlk &blk = store_.set(s)[w];
                if (blk.valid && blk.dirty) {
                    ++resizeWritebacks_;
                    writebackBlock(blk);
                }
            }
        }
    }
    store_.invalidateAll();
    mshr_.clear();
}

double
ResizableCache::missRate() const
{
    return accesses_.value() == 0
               ? 0.0
               : static_cast<double>(misses_.value()) /
                     static_cast<double>(accesses_.value());
}

void
ResizableCache::integrateCycles(Cycles delta)
{
    activeSetCycles_ += static_cast<double>(mask_.numSets()) *
                        static_cast<double>(delta);
    integratedCycles_ += delta;
}

double
ResizableCache::averageActiveFraction() const
{
    if (integratedCycles_ == 0)
        return activeFraction();
    return activeSetCycles_ /
           (static_cast<double>(mask_.maxSets()) *
            static_cast<double>(integratedCycles_));
}

bool
ResizableCache::mappingConsistent() const
{
    const std::uint64_t m = mask_.mask();
    for (std::uint64_t s = 0; s < mask_.numSets(); ++s) {
        for (unsigned w = 0; w < store_.assoc(); ++w) {
            const CacheBlk &blk = store_.set(s)[w];
            if (blk.valid && (blk.blockAddr & m) != s)
                return false;
        }
    }
    return true;
}

void
ResizableCache::resetStats()
{
    group_.resetAll();
    activeSetCycles_ = 0.0;
    integratedCycles_ = 0;
}

} // namespace drisim
