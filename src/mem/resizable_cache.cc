/**
 * @file
 * Shared resize machinery: masked indexing, sense-interval resize
 * steps, gating/writeback/remap handling and active-size integrals.
 */

#include "mem/resizable_cache.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace drisim
{

ResizableCache::ResizableCache(const DriParams &params,
                               const ResizePolicy &policy,
                               MemoryLevel *below,
                               stats::StatGroup *parent,
                               const std::string &groupName)
    : params_(params),
      policy_(policy),
      below_(below),
      mask_(makeSizeMask(params)),
      controller_(params),
      store_(mask_.maxSets(), params.assoc, params.repl),
      group_(parent, groupName),
      accesses_(&group_, "accesses", "cache accesses"),
      misses_(&group_, "misses", "cache misses"),
      upsizes_(&group_, "upsizes", "interval decisions: upsize"),
      downsizes_(&group_, "downsizes", "interval decisions: downsize"),
      holds_(&group_, "holds", "interval decisions: hold"),
      blocksLost_(&group_, "blocks_lost",
                  "valid blocks destroyed by gating sets off"),
      resizeWritebacks_(&group_, "resize_writebacks",
                        "dirty blocks written back by resizing"),
      evictionWritebacks_(&group_, "eviction_writebacks",
                          "dirty blocks written back by eviction"),
      remapInvalidations_(&group_, "remap_invalidations",
                          "blocks invalidated because upsizing "
                          "changed their set index")
{
}

void
ResizableCache::writebackBlock(const CacheBlk &blk)
{
    if (below_)
        below_->access(blk.blockAddr << mask_.offsetBits(),
                       AccessType::Store);
}

AccessResult
ResizableCache::access(Addr addr, AccessType type)
{
    return accessImpl(addr, type);
}

AccessResult
ResizableCache::accessImpl(Addr addr, AccessType type)
{
    ++accesses_;

    const Addr ba = addr >> mask_.offsetBits();
    const std::uint64_t set = ba & mask_.mask();

    int way = store_.findWay(set, ba);
    if (way != TagStore::kNoWay) {
        store_.touch(set, static_cast<unsigned>(way));
        if (type == AccessType::Store)
            store_.markDirty(set, static_cast<unsigned>(way));
        return {true, params_.hitLatency};
    }

    ++misses_;
    controller_.recordMiss();
    Cycles latency = params_.hitLatency;
    // Fills are reads: fetches propagate as fetches, loads and
    // stores (write-allocate) as loads.
    const AccessType fill = type == AccessType::InstFetch
                                ? AccessType::InstFetch
                                : AccessType::Load;
    if (below_)
        latency +=
            below_->access(ba << mask_.offsetBits(), fill).latency;

    const CacheBlk evicted = store_.insert(set, ba);
    if (evicted.valid && evicted.dirty) {
        ++evictionWritebacks_;
        writebackBlock(evicted);
    }
    if (type == AccessType::Store) {
        int w = store_.findWay(set, ba);
        drisim_assert(w != TagStore::kNoWay, "fill lost its block");
        store_.markDirty(set, static_cast<unsigned>(w));
    }
    return {false, latency};
}

bool
ResizableCache::retireInstructions(InstCount n)
{
    bool resized = false;
    // A large n can cross several interval boundaries; honour each.
    while (controller_.recordInstructions(n)) {
        n = 0;
        ResizeDecision d = controller_.endInterval(mask_.atMinimum(),
                                                   mask_.atMaximum());
        std::uint64_t before = mask_.numSets();
        applyDecision(d);
        resized |= mask_.numSets() != before;
    }
    return resized;
}

void
ResizableCache::applyDecision(ResizeDecision decision)
{
    const std::uint64_t sets = mask_.numSets();
    switch (decision) {
      case ResizeDecision::Hold:
        ++holds_;
        controller_.noteApplied(ResizeDecision::Hold);
        return;
      case ResizeDecision::Downsize: {
        std::uint64_t target = sets / params_.divisibility;
        if (target < mask_.minSets())
            target = mask_.minSets();
        if (target == sets) {
            ++holds_;
            controller_.noteApplied(ResizeDecision::Hold);
            return;
        }
        ++downsizes_;
        resizeTo(target);
        controller_.noteApplied(ResizeDecision::Downsize);
        return;
      }
      case ResizeDecision::Upsize: {
        std::uint64_t target = sets * params_.divisibility;
        if (target > mask_.maxSets())
            target = mask_.maxSets();
        if (target == sets) {
            ++holds_;
            controller_.noteApplied(ResizeDecision::Hold);
            return;
        }
        ++upsizes_;
        resizeTo(target);
        controller_.noteApplied(ResizeDecision::Upsize);
        return;
      }
    }
}

void
ResizableCache::resizeTo(std::uint64_t newSets)
{
    const std::uint64_t old_sets = mask_.numSets();

    if (newSets < old_sets) {
        // Gating the supply destroys the state of the disabled
        // sets: dirty blocks must reach the lower level first.
        for (std::uint64_t s = newSets; s < old_sets; ++s) {
            for (unsigned w = 0; w < store_.assoc(); ++w) {
                const CacheBlk &blk = store_.set(s)[w];
                if (!blk.valid)
                    continue;
                ++blocksLost_;
                if (policy_.writebackDirty && blk.dirty) {
                    ++resizeWritebacks_;
                    writebackBlock(blk);
                }
            }
            store_.invalidateSet(s);
        }
        mask_.setNumSets(newSets);
        return;
    }

    // Upsizing: newly enabled sets were gated and are already
    // invalid. Where stale aliases are not harmless (any level
    // holding data), evict every surviving block whose set index
    // changes under the wider mask; the read-only i-stream skips
    // this (Section 2.2).
    mask_.setNumSets(newSets);
    if (!policy_.remapOnUpsize)
        return;
    const std::uint64_t new_mask = mask_.mask();
    for (std::uint64_t s = 0; s < old_sets; ++s) {
        for (unsigned w = 0; w < store_.assoc(); ++w) {
            const CacheBlk blk = store_.set(s)[w];
            if (!blk.valid)
                continue;
            if ((blk.blockAddr & new_mask) != s) {
                if (policy_.writebackDirty && blk.dirty) {
                    ++resizeWritebacks_;
                    writebackBlock(blk);
                }
                store_.invalidate(s, w);
                ++remapInvalidations_;
            }
        }
    }
}

double
ResizableCache::activeFraction() const
{
    return static_cast<double>(mask_.numSets()) /
           static_cast<double>(mask_.maxSets());
}

std::uint64_t
ResizableCache::currentSizeBytes() const
{
    return mask_.numSets() *
           static_cast<std::uint64_t>(params_.blockBytes) *
           params_.assoc;
}

void
ResizableCache::invalidateAll()
{
    if (policy_.writebackDirty) {
        for (std::uint64_t s = 0; s < mask_.numSets(); ++s) {
            for (unsigned w = 0; w < store_.assoc(); ++w) {
                const CacheBlk &blk = store_.set(s)[w];
                if (blk.valid && blk.dirty) {
                    ++resizeWritebacks_;
                    writebackBlock(blk);
                }
            }
        }
    }
    store_.invalidateAll();
}

double
ResizableCache::missRate() const
{
    return accesses_.value() == 0
               ? 0.0
               : static_cast<double>(misses_.value()) /
                     static_cast<double>(accesses_.value());
}

void
ResizableCache::integrateCycles(Cycles delta)
{
    activeSetCycles_ += static_cast<double>(mask_.numSets()) *
                        static_cast<double>(delta);
    integratedCycles_ += delta;
}

double
ResizableCache::averageActiveFraction() const
{
    if (integratedCycles_ == 0)
        return activeFraction();
    return activeSetCycles_ /
           (static_cast<double>(mask_.maxSets()) *
            static_cast<double>(integratedCycles_));
}

bool
ResizableCache::mappingConsistent() const
{
    const std::uint64_t m = mask_.mask();
    for (std::uint64_t s = 0; s < mask_.numSets(); ++s) {
        for (unsigned w = 0; w < store_.assoc(); ++w) {
            const CacheBlk &blk = store_.set(s)[w];
            if (blk.valid && (blk.blockAddr & m) != s)
                return false;
        }
    }
    return true;
}

void
ResizableCache::resetStats()
{
    group_.resetAll();
    activeSetCycles_ = 0.0;
    integratedCycles_ = 0;
}

} // namespace drisim
