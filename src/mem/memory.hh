/**
 * @file
 * MemoryLevel interface and the main-memory latency model.
 *
 * Table 1: memory access latency is 80 cycles plus 4 cycles per
 * 8 bytes transferred.
 */

#ifndef DRISIM_MEM_MEMORY_HH
#define DRISIM_MEM_MEMORY_HH

#include <cstdint>

#include "stats/stats.hh"
#include "util/types.hh"

namespace drisim::sim
{
class CheckpointWriter;
class CheckpointReader;
} // namespace drisim::sim

namespace drisim
{

/** What kind of reference is being made. */
enum class AccessType { InstFetch, Load, Store };

/** Outcome of a memory-level access. */
struct AccessResult
{
    /** Did the access hit at this level? */
    bool hit = true;
    /** Total latency including any lower-level fills, cycles. */
    Cycles latency = 0;
};

/**
 * Anything addressable by an upper level: caches and main memory.
 */
class MemoryLevel
{
  public:
    virtual ~MemoryLevel() = default;

    /** Perform an access; returns hit/latency at this level. */
    virtual AccessResult access(Addr addr, AccessType type) = 0;

    /**
     * Timed access: like access(), but carries the requester's
     * clock so contention-aware levels (MSHR files, banked DRAM)
     * can order this reference against in-flight work. The default
     * forwards to the untimed path — levels whose latency is
     * load-independent need not override.
     */
    virtual AccessResult accessAt(Addr addr, AccessType type,
                                  Cycles now)
    {
        (void)now;
        return access(addr, type);
    }

    /** Drop all cached state (no-op for memory). */
    virtual void invalidateAll() {}

    /** Fraction of this level currently powered (1.0 unless gated). */
    virtual double activeFraction() const { return 1.0; }
};

/** DRAM with the Table 1 latency model. Always hits. */
class MainMemory : public MemoryLevel
{
  public:
    /**
     * @param transferBytes bytes moved per fill (the requester's
     *                      block size)
     * @param parent        stats parent
     */
    MainMemory(unsigned transferBytes, stats::StatGroup *parent);

    AccessResult access(Addr addr, AccessType type) override;

    /** Latency for one transfer of the configured size. */
    Cycles transferLatency() const;

    /** All accesses, demand fills and writeback probes alike. */
    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t reads() const { return reads_.value(); }
    std::uint64_t writebacks() const { return writebacks_.value(); }

    /** Serialize the access counter (sim/checkpoint.hh). */
    void snapshotTo(sim::CheckpointWriter &w) const;
    void restoreFrom(sim::CheckpointReader &r);

    /** Table 1 constants. */
    static constexpr Cycles kBaseLatency = 80;
    static constexpr Cycles kPerChunk = 4;
    static constexpr unsigned kChunkBytes = 8;

  private:
    unsigned transferBytes_;
    stats::StatGroup group_;
    stats::Scalar accesses_;
    stats::Scalar reads_;
    stats::Scalar writebacks_;
};

} // namespace drisim

#endif // DRISIM_MEM_MEMORY_HH
