/**
 * @file
 * Banked, queued DRAM model — the load-dependent replacement for the
 * flat Table 1 constant (mem/memory.hh).
 *
 * The flat MainMemory charges every fill 80 + 4 cycles per 8 bytes,
 * independent of traffic: DRI's extra-miss penalty is a fixed adder
 * and CMP bank pressure is invisible. This model keeps the Table 1
 * transfer term (4 cycles per 8-byte chunk) but replaces the flat
 * 80-cycle base with per-bank state:
 *
 *  - **Block-interleaved banks.** Consecutive transfer blocks map to
 *    consecutive banks, so streaming fills spread across the chip
 *    while same-block traffic serializes on one bank.
 *  - **Row buffer.** Each bank remembers its open row (rowBytes
 *    wide). A fill to the open row pays rowHitLatency; any other row
 *    pays rowMissLatency (precharge + activate; the Table 1 base of
 *    80 is the closed/worst-case default).
 *  - **Bank queues.** A bank services one request at a time: a fill
 *    arriving while the bank is busy starts after the last queued
 *    completion. queueDepth bounds outstanding entries per bank;
 *    arrivals that find the queue full are counted (the upstream
 *    MSHR file is what turns this pressure into core stalls).
 *
 * Writeback probes (AccessType::Store) are drained in the
 * background: they are counted, but they do not occupy a bank, do
 * not disturb the open row, and return zero latency — so writeback
 * traffic can never perturb demand-fill timing (the flat model's
 * write-buffer assumption, kept here by construction and locked by
 * tests/dram_test.cc).
 *
 * Default-off: hierarchies build this model only when
 * DramParams::banked is set (`dram.banked=1`); every pre-existing
 * configuration keeps the flat MainMemory bit-for-bit.
 */

#ifndef DRISIM_MEM_DRAM_HH
#define DRISIM_MEM_DRAM_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "mem/memory.hh"
#include "stats/stats.hh"
#include "util/types.hh"

namespace drisim::sim
{
class CheckpointWriter;
class CheckpointReader;
} // namespace drisim::sim

namespace drisim
{

/** Knobs of the banked DRAM model (see file comment for timing
 *  provenance; docs/DESIGN.md, Memory-system substitutions). */
struct DramParams
{
    /** Build the banked model instead of the flat Table 1 constant. */
    bool banked = false;
    /** Independent banks (block-interleaved). */
    unsigned banks = 8;
    /** Fill latency when the bank's row buffer holds the row. */
    Cycles rowHitLatency = 40;
    /** Fill latency on a row-buffer miss (the Table 1 base). */
    Cycles rowMissLatency = 80;
    /** Outstanding entries per bank before arrivals back up. */
    unsigned queueDepth = 8;
    /** Row-buffer width in bytes. */
    unsigned rowBytes = 8192;
};

/** The banked, queued DRAM terminal level. Always hits. */
class Dram : public MemoryLevel
{
  public:
    /**
     * @param params        bank/row/queue knobs (banked is assumed)
     * @param transferBytes bytes moved per fill (the requester's
     *                      block size; also the bank interleave
     *                      granule)
     * @param parent        stats parent
     */
    Dram(const DramParams &params, unsigned transferBytes,
         stats::StatGroup *parent);

    /** Untimed access (now = 0); exists for MemoryLevel callers
     *  that carry no clock. */
    AccessResult access(Addr addr, AccessType type) override
    {
        return accessAt(addr, type, 0);
    }

    AccessResult accessAt(Addr addr, AccessType type,
                          Cycles now) override;

    const DramParams &params() const { return params_; }

    /** Bank a fill to @p addr is serviced by. */
    unsigned bankOf(Addr addr) const
    {
        return static_cast<unsigned>((addr / transferBytes_) %
                                     params_.banks);
    }

    /** All accesses, demand fills and writeback probes alike
     *  (mirrors MainMemory::accesses() for the energy model). */
    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t reads() const { return reads_.value(); }
    std::uint64_t writebacks() const { return writebacks_.value(); }

    std::uint64_t rowHits() const { return rowHits_.value(); }
    std::uint64_t rowMisses() const { return rowMisses_.value(); }
    std::uint64_t queueFullEvents() const
    {
        return queueFullEvents_.value();
    }

    /** Cycles some bank spent servicing fills (sum over banks; the
     *  energy model's busy/idle split). */
    std::uint64_t busyCycles() const { return busyCycles_; }

    std::uint64_t rowHitsForBank(unsigned bank) const
    {
        return bankRowHits_[bank];
    }
    std::uint64_t rowMissesForBank(unsigned bank) const
    {
        return bankRowMisses_[bank];
    }

    /** Serialize bank/queue state + stats (sim/checkpoint.hh). */
    void snapshotTo(sim::CheckpointWriter &w) const;
    void restoreFrom(sim::CheckpointReader &r);

  private:
    struct Bank
    {
        /** Row currently latched in the row buffer. */
        Addr openRow = kInvalidAddr;
        /** Completion times of queued fills, nondecreasing. */
        std::deque<Cycles> inflight;
    };

    DramParams params_;
    unsigned transferBytes_;
    std::vector<Bank> banks_;
    std::vector<std::uint64_t> bankRowHits_;
    std::vector<std::uint64_t> bankRowMisses_;
    std::uint64_t busyCycles_ = 0;

    stats::StatGroup group_;
    stats::Scalar accesses_;
    stats::Scalar reads_;
    stats::Scalar writebacks_;
    stats::Scalar rowHits_;
    stats::Scalar rowMisses_;
    stats::Scalar queueFullEvents_;
};

} // namespace drisim

#endif // DRISIM_MEM_DRAM_HH
