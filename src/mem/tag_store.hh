/**
 * @file
 * Generic set-associative tag/data directory.
 *
 * Both the conventional caches and the DRI i-cache are built on this
 * store; the DRI i-cache simply restricts which sets are live and
 * remaps the index (size mask).
 */

#ifndef DRISIM_MEM_TAG_STORE_HH
#define DRISIM_MEM_TAG_STORE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hh"
#include "mem/cache_blk.hh"
#include "mem/repl_policy.hh"

namespace drisim::sim
{
class CheckpointWriter;
class CheckpointReader;
} // namespace drisim::sim

namespace drisim
{

/**
 * A numSets x assoc array of block frames, addressed by set index
 * and full block address.
 */
class TagStore
{
  public:
    TagStore(std::uint64_t numSets, unsigned assoc,
             ReplPolicy policy = ReplPolicy::LRU);

    std::uint64_t numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }

    /** Not-found sentinel for findWay(). */
    static constexpr int kNoWay = -1;

    /**
     * Find the way holding @p blockAddr within @p set, or kNoWay.
     * Does not update replacement state.
     */
    int findWay(std::uint64_t set, Addr blockAddr) const;

    /** Mark @p way of @p set most-recently used. */
    void touch(std::uint64_t set, unsigned way);

    /**
     * Insert @p blockAddr into @p set, evicting the policy's victim.
     * @return the evicted frame's prior contents (valid == false if
     *         the frame was free).
     */
    CacheBlk insert(std::uint64_t set, Addr blockAddr);

    /**
     * insert() with the victim choice restricted to ways
     * [0, waysLimit) — the selective-ways gating support: frames in
     * gated ways are never allocated, so a way-gated cache behaves
     * exactly like one of narrower associativity. @p wayOut (if
     * non-null) receives the filled way for per-line policy
     * bookkeeping.
     */
    CacheBlk insert(std::uint64_t set, Addr blockAddr,
                    unsigned waysLimit, unsigned *wayOut);

    /** Mark @p way of @p set dirty (store hit). */
    void markDirty(std::uint64_t set, unsigned way);

    /** Clear @p way's dirty bit (coherence downgrade flushed it). */
    void clearDirty(std::uint64_t set, unsigned way);

    /** MSI state of one frame (mem/directory.hh). */
    CoherenceState coherenceState(std::uint64_t set,
                                  unsigned way) const
    {
        return this->set(set)[way].cstate;
    }
    void setCoherenceState(std::uint64_t set, unsigned way,
                           CoherenceState s);

    /** Invalidate one frame. */
    void invalidate(std::uint64_t set, unsigned way);

    /** Invalidate every frame of @p set. */
    void invalidateSet(std::uint64_t set);

    /** Invalidate the whole store. */
    void invalidateAll();

    /** Read-only view of a set's ways. */
    std::span<const CacheBlk> set(std::uint64_t set) const;

    /** Number of valid frames (for tests/occupancy stats). */
    std::uint64_t validCount() const;

    /** Serialize frames + replacement clock (sim/checkpoint.hh).
     *  Restore requires identical geometry. */
    void snapshotTo(sim::CheckpointWriter &w) const;
    void restoreFrom(sim::CheckpointReader &r);

  private:
    std::span<CacheBlk> mutableSet(std::uint64_t set);

    std::uint64_t numSets_;
    unsigned assoc_;
    ReplPolicy policy_;
    std::uint64_t tick_ = 0;
    std::vector<CacheBlk> blocks_;
};

} // namespace drisim

#endif // DRISIM_MEM_TAG_STORE_HH
