/**
 * @file
 * The Table 1 memory system: L1 i-cache (conventional or DRI),
 * L1 d-cache, unified L2, main memory.
 */

#ifndef DRISIM_MEM_HIERARCHY_HH
#define DRISIM_MEM_HIERARCHY_HH

#include <memory>

#include "stats/stats.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"

namespace drisim
{

/** Parameters for the whole memory system (Table 1 defaults). */
struct HierarchyParams
{
    CacheParams l1i{"l1i", 64 * 1024, 1, 32, 1, ReplPolicy::LRU};
    CacheParams l1d{"l1d", 64 * 1024, 2, 32, 1, ReplPolicy::LRU};
    CacheParams l2{"l2", 1024 * 1024, 4, 64, 12, ReplPolicy::LRU};
};

/**
 * Owns memory + L2 + L1D and (optionally) a conventional L1I.
 * The L1I slot is a MemoryLevel pointer so a DRI i-cache can be
 * substituted by the caller.
 */
class Hierarchy
{
  public:
    /**
     * @param params         cache geometries
     * @param parent         stats parent
     * @param buildConvL1i   when true, construct a conventional L1I;
     *                       when false the caller installs its own
     *                       (e.g. a DriICache) via setL1I()
     */
    Hierarchy(const HierarchyParams &params, stats::StatGroup *parent,
              bool buildConvL1i = true);

    /** Install a caller-owned L1 i-cache (e.g. DRI). */
    void setL1I(MemoryLevel *l1i) { l1i_ = l1i; }

    MemoryLevel *l1i() { return l1i_; }
    Cache &l1d() { return *l1d_; }
    Cache &l2() { return *l2_; }
    MainMemory &mem() { return *mem_; }

    /** Conventional L1I if one was built, else nullptr. */
    Cache *convL1i() { return convL1i_.get(); }

    const HierarchyParams &params() const { return params_; }

  private:
    HierarchyParams params_;
    std::unique_ptr<MainMemory> mem_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Cache> l1d_;
    std::unique_ptr<Cache> convL1i_;
    MemoryLevel *l1i_ = nullptr;
};

} // namespace drisim

#endif // DRISIM_MEM_HIERARCHY_HH
