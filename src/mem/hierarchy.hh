/**
 * @file
 * The Table 1 memory system: L1 i-cache (conventional or DRI),
 * L1 d-cache, unified L2 (conventional or DRI), main memory.
 */

#ifndef DRISIM_MEM_HIERARCHY_HH
#define DRISIM_MEM_HIERARCHY_HH

#include <memory>

#include "stats/stats.hh"
#include "core/dri_params.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/memory.hh"
#include "mem/resizable_cache.hh"

namespace drisim::sim
{
class CheckpointWriter;
class CheckpointReader;
} // namespace drisim::sim

namespace drisim
{

/** Parameters for the whole memory system (Table 1 defaults). */
struct HierarchyParams
{
    CacheParams l1i{"l1i", 64 * 1024, 1, 32, 1, ReplPolicy::LRU};
    CacheParams l1d{"l1d", 64 * 1024, 2, 32, 1, ReplPolicy::LRU};
    CacheParams l2{"l2", 1024 * 1024, 4, 64, 12, ReplPolicy::LRU};

    /** Build the L2 as a resizable (gated-Vdd) cache. */
    bool l2Dri = false;
    /**
     * Resize knobs for the DRI L2. Geometry fields (size, assoc,
     * block, latency, repl) are synchronized from `l2` at
     * construction, so only the bounds/interval knobs matter here;
     * see driParamsForLevel().
     */
    DriParams l2DriParams = defaultL2DriParams();

    /** Default L2 resize knobs (Table 1 geometry, 64 KB bound). */
    static DriParams defaultL2DriParams();

    /** Memory model selection: flat Table 1 constant unless
     *  dram.banked is set (mem/dram.hh). */
    DramParams dram;
};

/**
 * Resize knobs @p dri with geometry copied from the conventional
 * level description @p level — the single source of truth for
 * per-level geometry, so a DRI level can never disagree with the
 * conventional cache it replaces.
 */
DriParams driParamsForLevel(const CacheParams &level,
                            const DriParams &dri);

/**
 * Owns memory + L2 + L1D and (optionally) a conventional L1I.
 * The L1I slot is a MemoryLevel pointer so a DRI i-cache can be
 * substituted by the caller; the L2 slot is built either as a
 * conventional Cache or as a ResizableCache (params.l2Dri).
 */
class Hierarchy
{
  public:
    /**
     * @param params         cache geometries (+ per-level DRI knobs)
     * @param parent         stats parent
     * @param buildConvL1i   when true, construct a conventional L1I;
     *                       when false the caller installs its own
     *                       (e.g. a DriICache) via setL1I()
     */
    Hierarchy(const HierarchyParams &params, stats::StatGroup *parent,
              bool buildConvL1i = true);

    /** Install a caller-owned L1 i-cache (e.g. DRI). */
    void setL1I(MemoryLevel *l1i) { l1i_ = l1i; }

    MemoryLevel *l1i() { return l1i_; }
    Cache &l1d() { return *l1d_; }

    /** The flat memory (fatal if banked DRAM was built — use
     *  memLevel()/dram() or the flavour-agnostic counters). */
    MainMemory &mem();

    /** The terminal level, whatever flavour was built. */
    MemoryLevel *memLevel() { return memLevel_; }

    /** Flat memory if built, else nullptr. */
    MainMemory *flatMem() { return mem_.get(); }

    /** Banked DRAM if built, else nullptr. */
    Dram *dram() { return dram_.get(); }

    /** Memory accesses/reads/writebacks regardless of flavour. */
    std::uint64_t memAccesses() const;
    std::uint64_t memReads() const;
    std::uint64_t memWritebacks() const;

    /** The L2 as a plain MemoryLevel, whatever flavour was built. */
    MemoryLevel *l2Level() { return l2Level_; }

    /** Conventional L2 if one was built, else nullptr. */
    Cache *convL2() { return l2_.get(); }

    /** DRI L2 if one was built, else nullptr. */
    ResizableCache *driL2() { return driL2_.get(); }

    /**
     * The conventional L2 (fatal if the hierarchy was built with a
     * DRI L2 — use convL2()/driL2() in flavour-aware code).
     */
    Cache &l2();

    /** L2 accesses regardless of flavour. */
    std::uint64_t l2Accesses() const;
    /** L2 misses regardless of flavour. */
    std::uint64_t l2Misses() const;
    /** L2 miss rate regardless of flavour. */
    double l2MissRate() const;

    /** Conventional L1I if one was built, else nullptr. */
    Cache *convL1i() { return convL1i_.get(); }

    const HierarchyParams &params() const { return params_; }

    /** Serialize every owned level — memory, L2 (either flavour),
     *  L1D, and the conventional L1I when one was built. A
     *  caller-installed L1I (DRI/policy) is the caller's to
     *  serialize (sim/checkpoint.hh). */
    void snapshotTo(sim::CheckpointWriter &w) const;
    void restoreFrom(sim::CheckpointReader &r);

  private:
    HierarchyParams params_;
    std::unique_ptr<MainMemory> mem_;
    std::unique_ptr<Dram> dram_;
    MemoryLevel *memLevel_ = nullptr;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<ResizableCache> driL2_;
    MemoryLevel *l2Level_ = nullptr;
    std::unique_ptr<Cache> l1d_;
    std::unique_ptr<Cache> convL1i_;
    MemoryLevel *l1i_ = nullptr;
};

} // namespace drisim

#endif // DRISIM_MEM_HIERARCHY_HH
