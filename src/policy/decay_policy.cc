/**
 * @file
 * Cache-decay policy: generational counters, per-line gating.
 */

#include "policy/decay_policy.hh"

#include "util/logging.hh"

namespace drisim
{

DecayCache::DecayCache(const PolicyConfig &config, MemoryLevel *below,
                       stats::StatGroup *parent)
    : PolicyCacheBase(config, below, parent, "decay_l1i"),
      counters_(totalLines_, 0),
      lit_(totalLines_, 1),
      powered_(totalLines_)
{
    drisim_assert(config.decay.decayInterval > 0,
                  "decay interval must be positive");
    drisim_assert(config.decay.counterLimit >= 1,
                  "decay counter limit must be at least 1");
}

void
DecayCache::intervalTick()
{
    ++generations_;
    const unsigned limit = config_.decay.counterLimit;
    for (std::uint64_t s = 0; s < numSets(); ++s) {
        for (unsigned w = 0; w < params().assoc; ++w) {
            const std::size_t i = lineIndex(s, w);
            if (!lit_[i])
                continue;
            // Saturating increment; at the limit the line is dead.
            if (counters_[i] < limit)
                ++counters_[i];
            if (counters_[i] < limit)
                continue;
            lit_[i] = 0;
            --powered_;
            // Gating destroys the state (gated-Vdd); the i-stream
            // is read-only, so no writeback is owed.
            if (store_.set(s)[w].valid) {
                ++blocksLost_;
                store_.invalidate(s, w);
            }
        }
    }
}

Cycles
DecayCache::onLineHit(std::uint64_t set, unsigned way)
{
    // A hit proves the line is live: restart its generation clock.
    counters_[lineIndex(set, way)] = 0;
    return 0;
}

// No policyCoherenceEvent override: a gated frame is already
// invalid (probes never find it), and a probe on a lit frame costs
// no extra stall here — the frame's supply stays on, so a later
// refill of the invalidated block is the base class's coherence
// refetch.

void
DecayCache::policyLineFill(std::uint64_t set, unsigned way)
{
    const std::size_t i = lineIndex(set, way);
    counters_[i] = 0;
    if (!lit_[i]) {
        // Restoring a gated frame's supply: the wake's latency
        // hides under the fill itself, but the transition is a real
        // energy event the accounting charges.
        lit_[i] = 1;
        ++powered_;
        ++wakeTransitions_;
    }
}

PolicyActivity
DecayCache::activity() const
{
    PolicyActivity a = baseActivity();
    a.blocksLost = blocksLost_;
    return a;
}

bool
DecayCache::linePowered(std::uint64_t set, unsigned way) const
{
    return lit_[lineIndex(set, way)] != 0;
}

unsigned
DecayCache::lineCounter(std::uint64_t set, unsigned way) const
{
    return counters_[lineIndex(set, way)];
}

} // namespace drisim
