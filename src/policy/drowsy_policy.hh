/**
 * @file
 * The Drowsy leakage policy (Flautner, Kim, Martin, Blaauw, Mudge,
 * ISCA 2002): periodic whole-array state-preserving standby.
 *
 * Every drowsyInterval retired instructions the whole array drops
 * its supply rails to the retention voltage (the drowsy paper's
 * "simple policy" — no per-line prediction). Contents survive; a
 * subsequent hit to a drowsy line stalls wakeLatency extra cycles
 * while its rail recharges — charged exactly once per wake, after
 * which the line is active until the next episode (locked by
 * tests). A miss that fills a drowsy frame wakes it under the
 * fill's own latency.
 *
 * Leakage-wise the drowsy fraction is state-preserving: the
 * accounting charges it at the drowsy cell's residual rate
 * (circuit/drowsy_cell.hh) instead of the ~zero gated-Vdd rate —
 * the trade Bai et al. quantify between the two technique families.
 */

#ifndef DRISIM_POLICY_DROWSY_POLICY_HH
#define DRISIM_POLICY_DROWSY_POLICY_HH

#include <vector>

#include "policy/policy_cache.hh"

namespace drisim
{

/** Periodic whole-array drowsy mode over a conventional i-cache. */
class DrowsyCache : public PolicyCacheBase
{
  public:
    DrowsyCache(const PolicyConfig &config, MemoryLevel *below,
                stats::StatGroup *parent);

    PolicyKind kind() const override { return PolicyKind::Drowsy; }
    PolicyActivity activity() const override;

    // Inspection (tests).
    bool lineDrowsy(std::uint64_t set, unsigned way) const;
    std::uint64_t drowsyLineCount() const { return drowsyCount_; }
    std::uint64_t episodes() const { return episodes_; }

  protected:
    InstCount intervalLength() const override
    {
        return config_.drowsy.drowsyInterval;
    }
    void intervalTick() override;
    std::uint64_t poweredLines() const override
    {
        return totalLines_ - drowsyCount_;
    }
    std::uint64_t drowsyLines() const override
    {
        return drowsyCount_;
    }

    Cycles onLineHit(std::uint64_t set, unsigned way) override;
    void policyLineFill(std::uint64_t set, unsigned way) override;
    Cycles policyCoherenceEvent(std::uint64_t set, unsigned way,
                                bool invalidate) override;

    void snapshotExtra(sim::CheckpointWriter &w) const override;
    void restoreExtra(sim::CheckpointReader &r) override;

  private:
    std::size_t lineIndex(std::uint64_t set, unsigned way) const
    {
        return static_cast<std::size_t>(set) * params().assoc + way;
    }

    void wakeLine(std::size_t i);

    /** Standby state per line frame (true = drowsy rail). */
    std::vector<char> drowsy_;
    std::uint64_t drowsyCount_ = 0;
    std::uint64_t episodes_ = 0;
};

} // namespace drisim

#endif // DRISIM_POLICY_DROWSY_POLICY_HH
