/**
 * @file
 * The Cache Decay leakage policy (Kaxiras, Hu, Martonosi, ISCA
 * 2001): per-line generational counters gate dead lines via
 * gated-Vdd.
 *
 * Every decayInterval retired instructions a generation elapses and
 * each powered line's saturating counter increments; a line whose
 * counter reaches counterLimit is declared dead and its supply is
 * gated — state-destroying, like the paper's set-granularity DRI,
 * but at line granularity and with no global controller. Any touch
 * (hit) resets the line's counter; a miss that fills a gated frame
 * restores its supply (a wake transition whose latency hides under
 * the fill).
 *
 * The read-only i-stream needs no writeback on gating, mirroring
 * ResizePolicy::icache().
 */

#ifndef DRISIM_POLICY_DECAY_POLICY_HH
#define DRISIM_POLICY_DECAY_POLICY_HH

#include <vector>

#include "policy/policy_cache.hh"

namespace drisim
{

/** Per-line generational decay over a conventional i-cache. */
class DecayCache : public PolicyCacheBase
{
  public:
    DecayCache(const PolicyConfig &config, MemoryLevel *below,
               stats::StatGroup *parent);

    PolicyKind kind() const override { return PolicyKind::Decay; }
    PolicyActivity activity() const override;

    // Inspection (tests).
    bool linePowered(std::uint64_t set, unsigned way) const;
    unsigned lineCounter(std::uint64_t set, unsigned way) const;
    std::uint64_t poweredLineCount() const { return powered_; }
    std::uint64_t decayGatedBlocks() const { return blocksLost_; }
    std::uint64_t generations() const { return generations_; }

  protected:
    InstCount intervalLength() const override
    {
        return config_.decay.decayInterval;
    }
    void intervalTick() override;
    std::uint64_t poweredLines() const override { return powered_; }

    Cycles onLineHit(std::uint64_t set, unsigned way) override;
    void policyLineFill(std::uint64_t set, unsigned way) override;

    void snapshotExtra(sim::CheckpointWriter &w) const override;
    void restoreExtra(sim::CheckpointReader &r) override;

  private:
    std::size_t lineIndex(std::uint64_t set, unsigned way) const
    {
        return static_cast<std::size_t>(set) * params().assoc + way;
    }

    /** Saturating generation counter per line frame. */
    std::vector<unsigned> counters_;
    /** Supply state per line frame (true = full Vdd). */
    std::vector<char> lit_;

    std::uint64_t powered_;
    std::uint64_t generations_ = 0;
    std::uint64_t blocksLost_ = 0;
};

} // namespace drisim

#endif // DRISIM_POLICY_DECAY_POLICY_HH
