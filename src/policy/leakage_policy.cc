/**
 * @file
 * Leakage-policy names, validation and the concrete-policy factory.
 */

#include "policy/leakage_policy.hh"

#include "policy/decay_policy.hh"
#include "policy/dri_policy.hh"
#include "policy/drowsy_policy.hh"
#include "policy/static_ways.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace drisim
{

const char *
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Dri:        return "dri";
      case PolicyKind::Decay:      return "decay";
      case PolicyKind::Drowsy:     return "drowsy";
      case PolicyKind::StaticWays: return "ways";
    }
    return "?";
}

bool
parsePolicyKind(const std::string &text, PolicyKind &out)
{
    if (text == "dri")
        out = PolicyKind::Dri;
    else if (text == "decay")
        out = PolicyKind::Decay;
    else if (text == "drowsy")
        out = PolicyKind::Drowsy;
    else if (text == "ways")
        out = PolicyKind::StaticWays;
    else
        return false;
    return true;
}

void
PolicyConfig::validate() const
{
    dri.validate(); // geometry checks apply to every policy
    switch (kind) {
      case PolicyKind::Dri:
        break;
      case PolicyKind::Decay:
        if (decay.decayInterval == 0)
            drisim_fatal("decay interval must be positive");
        if (decay.counterLimit < 1)
            drisim_fatal("decay counter limit must be at least 1");
        break;
      case PolicyKind::Drowsy:
        if (drowsy.drowsyInterval == 0)
            drisim_fatal("drowsy interval must be positive");
        break;
      case PolicyKind::StaticWays:
        if (ways.activeWays < 1)
            drisim_fatal("static-ways must keep at least one way "
                         "powered (way 0 is never gated)");
        break;
    }
}

std::string
PolicyConfig::paramSummary() const
{
    switch (kind) {
      case PolicyKind::Dri:
        return strFormat(
            "sb=%s/mb=%llu", bytesToString(dri.sizeBoundBytes).c_str(),
            static_cast<unsigned long long>(dri.missBound));
      case PolicyKind::Decay:
        return strFormat(
            "interval=%llu/limit=%u",
            static_cast<unsigned long long>(decay.decayInterval),
            decay.counterLimit);
      case PolicyKind::Drowsy:
        return strFormat(
            "interval=%llu/wake=%llu",
            static_cast<unsigned long long>(drowsy.drowsyInterval),
            static_cast<unsigned long long>(drowsy.wakeLatency));
      case PolicyKind::StaticWays:
        return strFormat("active=%u/%u", ways.activeWays, dri.assoc);
    }
    return "?";
}

std::unique_ptr<LeakagePolicy>
makeLeakagePolicy(const PolicyConfig &config, MemoryLevel *below,
                  stats::StatGroup *parent)
{
    config.validate();
    switch (config.kind) {
      case PolicyKind::Dri:
        return std::make_unique<DriPolicy>(config, below, parent);
      case PolicyKind::Decay:
        return std::make_unique<DecayCache>(config, below, parent);
      case PolicyKind::Drowsy:
        return std::make_unique<DrowsyCache>(config, below, parent);
      case PolicyKind::StaticWays:
        return std::make_unique<StaticWaysCache>(config, below,
                                                 parent);
    }
    drisim_panic("unreachable policy kind");
}

} // namespace drisim
