/**
 * @file
 * Shared plumbing of the line-granularity policy caches: interval
 * counting and powered/drowsy time integrals.
 */

#include "policy/policy_cache.hh"

#include "util/logging.hh"

namespace drisim
{

namespace
{

CacheParams
cacheParamsFor(const PolicyConfig &config,
               const std::string &groupName)
{
    CacheParams p;
    p.name = groupName;
    p.sizeBytes = config.dri.sizeBytes;
    p.assoc = config.dri.assoc;
    p.blockBytes = config.dri.blockBytes;
    p.hitLatency = config.dri.hitLatency;
    p.repl = config.dri.repl;
    p.mshrs = config.dri.mshrs;
    return p;
}

} // namespace

PolicyCacheBase::PolicyCacheBase(const PolicyConfig &config,
                                 MemoryLevel *below,
                                 stats::StatGroup *parent,
                                 const std::string &groupName)
    : Cache(cacheParamsFor(config, groupName), below, parent),
      config_(config),
      totalLines_(numSets() * params().assoc),
      coherenceLost_(totalLines_, 0)
{
}

void
PolicyCacheBase::onLineFill(std::uint64_t set, unsigned way)
{
    const std::size_t i = frameIndex(set, way);
    if (coherenceLost_[i]) {
        // Refilling a frame a coherence probe emptied: the refetch
        // the directory forced on this core.
        coherenceLost_[i] = 0;
        ++coherenceRefetches_;
    }
    policyLineFill(set, way);
}

Cycles
PolicyCacheBase::onLineCoherenceEvent(std::uint64_t set, unsigned way,
                                      bool invalidate)
{
    const Cycles stall = policyCoherenceEvent(set, way, invalidate);
    if (invalidate)
        coherenceLost_[frameIndex(set, way)] = 1;
    return stall;
}

AccessResult
PolicyCacheBase::access(Addr addr, AccessType type)
{
    drisim_assert(type == AccessType::InstFetch,
                  "%s is an i-cache: only fetches are legal",
                  params().name.c_str());
    return Cache::access(addr, type);
}

AccessResult
PolicyCacheBase::accessAt(Addr addr, AccessType type, Cycles now)
{
    drisim_assert(type == AccessType::InstFetch,
                  "%s is an i-cache: only fetches are legal",
                  params().name.c_str());
    return Cache::accessAt(addr, type, now);
}

void
PolicyCacheBase::onRetire(InstCount n)
{
    const InstCount interval = intervalLength();
    if (interval == 0)
        return;
    instrsIntoInterval_ += n;
    // A large n can cross several boundaries; honour each (the same
    // contract as the DRI sense interval).
    while (instrsIntoInterval_ >= interval) {
        instrsIntoInterval_ -= interval;
        intervalTick();
    }
}

void
PolicyCacheBase::onCycles(Cycles delta)
{
    activeLineCycles_ += static_cast<double>(poweredLines()) *
                         static_cast<double>(delta);
    drowsyLineCycles_ += static_cast<double>(drowsyLines()) *
                         static_cast<double>(delta);
    integratedCycles_ += delta;
}

PolicyActivity
PolicyCacheBase::baseActivity() const
{
    PolicyActivity a;
    const double denom =
        static_cast<double>(totalLines_) *
        static_cast<double>(integratedCycles_);
    if (integratedCycles_ == 0) {
        // No time integrated yet: report the instantaneous state.
        a.avgActiveFraction =
            static_cast<double>(poweredLines()) /
            static_cast<double>(totalLines_);
        a.avgDrowsyFraction =
            static_cast<double>(drowsyLines()) /
            static_cast<double>(totalLines_);
    } else {
        a.avgActiveFraction = activeLineCycles_ / denom;
        a.avgDrowsyFraction = drowsyLineCycles_ / denom;
    }
    a.wakeTransitions = wakeTransitions_;
    a.wakeStallCycles = wakeStallCycles_;
    a.coherenceInvalidations = coherenceInvalidations();
    a.coherenceWakes = coherenceWakes_;
    a.coherenceRefetches = coherenceRefetches_;
    return a;
}

} // namespace drisim
