/**
 * @file
 * The Dri leakage policy: a thin adapter presenting the paper's DRI
 * i-cache (core/dri_icache.hh) through the LeakagePolicy interface.
 *
 * Deliberately zero-logic: the adapter owns a DriICache and forwards
 * the retire/cycle broadcast and stat reads 1:1, so a run through
 * the policy subsystem is byte-identical to the direct runDri()
 * path (locked by tests/policy_test.cc). The gated sets are
 * state-destroying; the activity report maps the cache's average
 * active fraction straight through, with no drowsy component.
 */

#ifndef DRISIM_POLICY_DRI_POLICY_HH
#define DRISIM_POLICY_DRI_POLICY_HH

#include "core/dri_icache.hh"
#include "policy/leakage_policy.hh"

namespace drisim
{

/** DRI resizing behind the common policy interface. */
class DriPolicy : public LeakagePolicy
{
  public:
    DriPolicy(const PolicyConfig &config, MemoryLevel *below,
              stats::StatGroup *parent);

    PolicyKind kind() const override { return PolicyKind::Dri; }
    MemoryLevel *level() override { return &icache_; }

    void onRetire(InstCount n) override
    {
        icache_.retireInstructions(n);
    }
    void onCycles(Cycles delta) override
    {
        icache_.integrateCycles(delta);
    }

    std::uint64_t l1Accesses() const override
    {
        return icache_.accesses();
    }
    std::uint64_t l1Misses() const override
    {
        return icache_.misses();
    }

    PolicyActivity activity() const override;

    /** LeakagePolicy contract: forward 1:1 to the wrapped cache. */
    void snapshotTo(sim::CheckpointWriter &w) const override;
    void restoreFrom(sim::CheckpointReader &r) override;

    /** The wrapped cache (tests / flavour-aware reports). */
    DriICache &icache() { return icache_; }

  private:
    DriICache icache_;
};

} // namespace drisim

#endif // DRISIM_POLICY_DRI_POLICY_HH
