/**
 * @file
 * The pluggable leakage-policy subsystem.
 *
 * The paper's DRI i-cache is one point in the leakage-control design
 * space. Its related work names per-line decay-style gating as the
 * natural alternative, and Bai et al. (PAPERS.md) show that
 * state-preserving (drowsy) and state-destroying (gated-Vdd)
 * techniques win in different regimes. This layer makes the
 * technique a plug-in so the simulator can answer "which leakage
 * technique wins, where?" instead of only "how good is DRI?":
 *
 *  - Dri        — the paper's set-granularity resizing, a thin
 *                 adapter over DriICache (behaviour byte-identical
 *                 to the direct path; locked by tests);
 *  - Decay      — per-line generational counters gate dead lines
 *                 via gated-Vdd (state-destroying; Kaxiras et al.,
 *                 "Cache Decay");
 *  - Drowsy     — the whole array periodically drops into a
 *                 state-preserving low-Vdd mode; touched lines pay
 *                 a wake stall (Flautner et al., "Drowsy Caches");
 *  - StaticWays — a fixed subset of ways is gated off, the simple
 *                 static baseline (after Albonesi's Selective
 *                 Ways). Way 0 is never gated.
 *
 * Every policy observes the same two signals the DRI controller
 * already consumes — retired instructions (RetireSink; intervals are
 * counted in dynamic instructions so behaviour is identical on the
 * detailed and fast timing models) and elapsed cycles — and reports
 * the same integrals: time-averaged full-power / drowsy fractions,
 * wake events and wake stalls. energy/accounting.hh turns those into
 * state-preserving vs state-destroying leakage rows.
 */

#ifndef DRISIM_POLICY_LEAKAGE_POLICY_HH
#define DRISIM_POLICY_LEAKAGE_POLICY_HH

#include <memory>
#include <string>

#include "core/dri_params.hh"
#include "mem/memory.hh"
#include "mem/retire_sink.hh"
#include "stats/stats.hh"
#include "util/types.hh"

namespace drisim::sim
{
class CheckpointWriter;
class CheckpointReader;
} // namespace drisim::sim

namespace drisim
{

/** Which leakage-control technique manages the L1 i-cache. */
enum class PolicyKind { Dri, Decay, Drowsy, StaticWays };

/** Canonical lowercase name ("dri", "decay", "drowsy", "ways"). */
const char *policyKindName(PolicyKind kind);

/** Parse a policy name; returns false on anything unrecognized. */
bool parsePolicyKind(const std::string &text, PolicyKind &out);

/** Cache-decay knobs (per-line generational gating). */
struct DecayParams
{
    /**
     * Instructions per decay generation. A line untouched for
     * counterLimit consecutive generations is declared dead and its
     * supply gated (state destroyed; the read-only i-stream needs
     * no writeback).
     */
    InstCount decayInterval = 100 * 1000;

    /**
     * Generations a line survives untouched before gating — the
     * saturation point of the per-line counter (a 2-bit counter in
     * the decay paper's hierarchical scheme).
     */
    unsigned counterLimit = 3;
};

/** Drowsy-cache knobs (periodic state-preserving standby). */
struct DrowsyParams
{
    /**
     * Instructions between whole-array drowsy episodes (the decay
     * paper's "simple policy": every window, put all lines drowsy
     * and let accesses wake what the program still needs).
     */
    InstCount drowsyInterval = 100 * 1000;

    /** Extra cycles the first access to a drowsy line stalls. */
    Cycles wakeLatency = 1;
};

/** Selective-ways knobs (static way gating). */
struct StaticWaysParams
{
    /**
     * Ways left powered (ways [0, activeWays) of every set). Always
     * clamped to [1, assoc]: way 0 is never gated.
     */
    unsigned activeWays = 1;
};

/** Full configuration of one leakage-managed L1 i-cache. */
struct PolicyConfig
{
    PolicyKind kind = PolicyKind::Dri;

    /**
     * Geometry (size/assoc/block/latency) for every policy, plus
     * the resize knobs the Dri policy consumes.
     */
    DriParams dri{};

    DecayParams decay{};
    DrowsyParams drowsy{};
    StaticWaysParams ways{};

    /** Sanity-check the combination (fatal on bad input). */
    void validate() const;

    /** Short human-readable parameter summary for reports, e.g.
     *  "sb=4K/mb=128" or "interval=100000/wake=1". */
    std::string paramSummary() const;
};

/** Time-integrated activity every policy reports. */
struct PolicyActivity
{
    /**
     * Time-averaged fraction of the array at full supply (leaking
     * at the active rate). The remainder splits into the drowsy
     * fraction below and, implicitly, the gated (state-destroying)
     * fraction 1 - active - drowsy.
     */
    double avgActiveFraction = 1.0;

    /** Time-averaged fraction in state-preserving drowsy standby. */
    double avgDrowsyFraction = 0.0;

    /** Drowsy->active (or gated->powered) wake transitions. */
    std::uint64_t wakeTransitions = 0;

    /** Total extra cycles charged waking drowsy lines. */
    Cycles wakeStallCycles = 0;

    /** Valid blocks destroyed by gating (decay / DRI downsizing). */
    std::uint64_t blocksLost = 0;

    /** Resize events (Dri only). */
    std::uint64_t resizes = 0;

    /** Controller throttle events (Dri only). */
    std::uint64_t throttleEvents = 0;

    /** Resizing tag bits in use (Dri only). */
    unsigned resizingTagBits = 0;

    /** Lines lost to coherence invalidation probes (coherent CMP
     *  runs only; mem/directory.hh). */
    std::uint64_t coherenceInvalidations = 0;

    /** Wakes forced by coherence probes landing on drowsy lines —
     *  the probe cannot be answered until the rail recharges. */
    std::uint64_t coherenceWakes = 0;

    /** Fills re-fetching a block a probe (or decay of a previously
     *  invalidated frame) threw away — directory-visible refetch
     *  traffic. */
    std::uint64_t coherenceRefetches = 0;
};

/**
 * One leakage-managed L1 i-cache: the common handle the runner, the
 * CMP system and the search harness hold, whatever technique is
 * behind it. Concrete policies expose their cache as a MemoryLevel
 * (level()) so the hierarchy/core wiring is flavour-blind, and
 * consume the core's retire/cycle broadcast (RetireSink).
 */
class LeakagePolicy : public RetireSink
{
  public:
    ~LeakagePolicy() override = default;

    virtual PolicyKind kind() const = 0;

    /** The managed i-cache, to wire as the core's L1I. */
    virtual MemoryLevel *level() = 0;

    virtual std::uint64_t l1Accesses() const = 0;
    virtual std::uint64_t l1Misses() const = 0;

    /** Time-integrated activity report. */
    virtual PolicyActivity activity() const = 0;

    /**
     * Serialize the managed cache's full state — contents, per-line
     * policy state, interval bookkeeping, time integrals, stats —
     * for checkpoint/restore (sim/checkpoint.hh). Restore requires
     * an identically-configured policy.
     */
    virtual void snapshotTo(sim::CheckpointWriter &w) const = 0;
    virtual void restoreFrom(sim::CheckpointReader &r) = 0;

    double l1MissRate() const
    {
        const std::uint64_t a = l1Accesses();
        return a == 0 ? 0.0
                      : static_cast<double>(l1Misses()) /
                            static_cast<double>(a);
    }
};

/**
 * Build the configured policy over @p below (the L2 or whatever the
 * L1I misses to). Geometry comes from config.dri for every kind.
 */
std::unique_ptr<LeakagePolicy>
makeLeakagePolicy(const PolicyConfig &config, MemoryLevel *below,
                  stats::StatGroup *parent);

} // namespace drisim

#endif // DRISIM_POLICY_LEAKAGE_POLICY_HH
