/**
 * @file
 * The StaticWays leakage policy (after Albonesi, "Selective Cache
 * Ways", MICRO 1999, statically configured): a fixed subset of ways
 * is gated off at configuration time — the simple baseline every
 * adaptive technique must beat.
 *
 * Ways [activeWays, assoc) of every set are supply-gated; their
 * frames are never allocated (mem/tag_store.hh victim-way limit),
 * so the cache behaves exactly like one of narrower associativity.
 * Way 0 is never gated: activeWays is clamped to [1, assoc] (and
 * the config layer's strict parser already rejects 0). The gated
 * fraction is state-destroying but constant, so there are no wake
 * events and no behaviour dynamics at all.
 */

#ifndef DRISIM_POLICY_STATIC_WAYS_HH
#define DRISIM_POLICY_STATIC_WAYS_HH

#include "policy/policy_cache.hh"

namespace drisim
{

/** Statically way-gated i-cache. */
class StaticWaysCache : public PolicyCacheBase
{
  public:
    StaticWaysCache(const PolicyConfig &config, MemoryLevel *below,
                    stats::StatGroup *parent);

    PolicyKind kind() const override
    {
        return PolicyKind::StaticWays;
    }
    PolicyActivity activity() const override;

    /** Ways left powered after clamping (>= 1; way 0 included). */
    unsigned activeWays() const { return activeWays_; }

    double activeFraction() const override
    {
        return static_cast<double>(activeWays_) / params().assoc;
    }

  protected:
    InstCount intervalLength() const override { return 0; }
    std::uint64_t poweredLines() const override
    {
        return numSets() * activeWays_;
    }
    unsigned allocWays() const override { return activeWays_; }

  private:
    unsigned activeWays_;
};

} // namespace drisim

#endif // DRISIM_POLICY_STATIC_WAYS_HH
