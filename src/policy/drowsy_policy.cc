/**
 * @file
 * Drowsy policy: periodic whole-array standby, per-line wakes.
 */

#include "policy/drowsy_policy.hh"

#include "util/logging.hh"

namespace drisim
{

DrowsyCache::DrowsyCache(const PolicyConfig &config,
                         MemoryLevel *below,
                         stats::StatGroup *parent)
    : PolicyCacheBase(config, below, parent, "drowsy_l1i"),
      drowsy_(totalLines_, 0)
{
    drisim_assert(config.drowsy.drowsyInterval > 0,
                  "drowsy interval must be positive");
}

void
DrowsyCache::intervalTick()
{
    // The simple policy: everything goes drowsy, the working set
    // wakes itself back up access by access.
    ++episodes_;
    std::fill(drowsy_.begin(), drowsy_.end(), 1);
    drowsyCount_ = totalLines_;
}

void
DrowsyCache::wakeLine(std::size_t i)
{
    drowsy_[i] = 0;
    --drowsyCount_;
    ++wakeTransitions_;
}

Cycles
DrowsyCache::onLineHit(std::uint64_t set, unsigned way)
{
    const std::size_t i = lineIndex(set, way);
    if (!drowsy_[i])
        return 0;
    // First touch after an episode: recharge the rail. Charged
    // exactly once — the line stays active until the next episode.
    wakeLine(i);
    const Cycles stall = config_.drowsy.wakeLatency;
    wakeStallCycles_ += stall;
    return stall;
}

void
DrowsyCache::policyLineFill(std::uint64_t set, unsigned way)
{
    const std::size_t i = lineIndex(set, way);
    // The fill drives the frame at full rail; the wake transition
    // happens but its latency hides under the miss itself.
    if (drowsy_[i])
        wakeLine(i);
}

Cycles
DrowsyCache::policyCoherenceEvent(std::uint64_t set, unsigned way,
                                  bool invalidate)
{
    (void)invalidate;
    const std::size_t i = lineIndex(set, way);
    if (!drowsy_[i])
        return 0;
    // A drowsy line cannot be snooped at the retention voltage: the
    // probe recharges the rail first (invalidation and downgrade
    // both), and that wake stall rides the requester's probe.
    wakeLine(i);
    ++coherenceWakes_;
    const Cycles stall = config_.drowsy.wakeLatency;
    wakeStallCycles_ += stall;
    return stall;
}

PolicyActivity
DrowsyCache::activity() const
{
    return baseActivity();
}

bool
DrowsyCache::lineDrowsy(std::uint64_t set, unsigned way) const
{
    return drowsy_[lineIndex(set, way)] != 0;
}

} // namespace drisim
