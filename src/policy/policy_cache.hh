/**
 * @file
 * Shared base of the line-granularity policy caches (Decay, Drowsy,
 * StaticWays): a conventional i-cache (mem/cache.hh) plus the
 * LeakagePolicy reporting plumbing — interval counting in retired
 * instructions and the time integrals of the powered/drowsy line
 * populations. The Dri policy does not use this base; it adapts the
 * set-granularity ResizableCache machinery instead.
 */

#ifndef DRISIM_POLICY_POLICY_CACHE_HH
#define DRISIM_POLICY_POLICY_CACHE_HH

#include <string>
#include <vector>

#include "mem/cache.hh"
#include "policy/leakage_policy.hh"

namespace drisim
{

/** Cache + policy bookkeeping shared by the per-line policies. */
class PolicyCacheBase : public Cache, public LeakagePolicy
{
  public:
    /**
     * @param config    full policy configuration (geometry from
     *                  config.dri)
     * @param below     next level; may be nullptr (standalone)
     * @param parent    stats parent
     * @param groupName stats group name (e.g. "decay_l1i")
     */
    PolicyCacheBase(const PolicyConfig &config, MemoryLevel *below,
                    stats::StatGroup *parent,
                    const std::string &groupName);

    /** I-cache: only instruction fetches are legal. */
    AccessResult access(Addr addr, AccessType type) override;
    AccessResult accessAt(Addr addr, AccessType type,
                          Cycles now) override;

    MemoryLevel *level() override { return this; }
    std::uint64_t l1Accesses() const override { return accesses(); }
    std::uint64_t l1Misses() const override { return misses(); }

    /** Count retired instructions; crossing an interval boundary
     *  (config-specific length) triggers intervalTick() once per
     *  boundary crossed. */
    void onRetire(InstCount n) override;

    /** Integrate the powered/drowsy populations over time. */
    void onCycles(Cycles delta) override;

    std::uint64_t totalLines() const { return totalLines_; }
    Cycles integratedCycles() const { return integratedCycles_; }

    /** One override serves both bases (Cache and LeakagePolicy):
     *  cache contents + stats, the shared policy bookkeeping, then
     *  the flavour hook below. */
    void snapshotTo(sim::CheckpointWriter &w) const override;
    void restoreFrom(sim::CheckpointReader &r) override;

  protected:
    /**
     * The base intercepts the Cache fill/probe hooks to account
     * coherence refetches uniformly (a fill into a frame a probe
     * invalidated), then forwards to these flavour hooks — the
     * per-line policies override policyLineFill/policyCoherenceEvent
     * instead of the Cache hooks.
     */
    void onLineFill(std::uint64_t set, unsigned way) final;
    Cycles onLineCoherenceEvent(std::uint64_t set, unsigned way,
                                bool invalidate) final;

    /** Flavour reaction to a fill (see Cache::onLineFill). */
    virtual void policyLineFill(std::uint64_t set, unsigned way)
    {
        (void)set;
        (void)way;
    }

    /** Flavour reaction to a coherence probe; returns the stall the
     *  probe costs here (a drowsy line's wake). */
    virtual Cycles policyCoherenceEvent(std::uint64_t set,
                                        unsigned way, bool invalidate)
    {
        (void)set;
        (void)way;
        (void)invalidate;
        return 0;
    }

    /** Frame index shared by the per-line state vectors. */
    std::size_t frameIndex(std::uint64_t set, unsigned way) const
    {
        return static_cast<std::size_t>(set) * params().assoc + way;
    }

    /** Flavour-specific per-line state (decay counters, drowsy
     *  bits). Defaults are empty for stateless flavours. */
    virtual void snapshotExtra(sim::CheckpointWriter &w) const
    {
        (void)w;
    }
    virtual void restoreExtra(sim::CheckpointReader &r) { (void)r; }

    /** Length of this policy's interval in instructions (0 = no
     *  periodic behaviour; onRetire then never ticks). */
    virtual InstCount intervalLength() const = 0;

    /** One interval boundary crossed (decay generation / drowsy
     *  episode). */
    virtual void intervalTick() {}

    /** Lines currently at full supply (for the time integral). */
    virtual std::uint64_t poweredLines() const { return totalLines_; }

    /** Lines currently in drowsy standby (for the time integral). */
    virtual std::uint64_t drowsyLines() const { return 0; }

    /** Fill the common fields of an activity report. */
    PolicyActivity baseActivity() const;

    PolicyConfig config_;
    std::uint64_t totalLines_;

    InstCount instrsIntoInterval_ = 0;
    Cycles integratedCycles_ = 0;
    double activeLineCycles_ = 0.0;
    double drowsyLineCycles_ = 0.0;

    std::uint64_t wakeTransitions_ = 0;
    Cycles wakeStallCycles_ = 0;

    /** Wakes forced by coherence probes (flavours bump this from
     *  policyCoherenceEvent when they wake a line to answer). */
    std::uint64_t coherenceWakes_ = 0;

  private:
    /** Frames whose block a probe invalidated; the next fill there
     *  is a coherence refetch. */
    std::vector<char> coherenceLost_;
    std::uint64_t coherenceRefetches_ = 0;
};

} // namespace drisim

#endif // DRISIM_POLICY_POLICY_CACHE_HH
