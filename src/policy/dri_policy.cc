/**
 * @file
 * Dri policy adapter: forwards everything to the wrapped DriICache.
 */

#include "policy/dri_policy.hh"

namespace drisim
{

DriPolicy::DriPolicy(const PolicyConfig &config, MemoryLevel *below,
                     stats::StatGroup *parent)
    : icache_(config.dri, below, parent)
{
}

PolicyActivity
DriPolicy::activity() const
{
    PolicyActivity a;
    a.avgActiveFraction = icache_.averageActiveFraction();
    a.avgDrowsyFraction = 0.0;
    a.wakeTransitions = 0;
    a.wakeStallCycles = 0;
    a.blocksLost = icache_.blocksLost();
    a.resizes = icache_.upsizes() + icache_.downsizes();
    a.throttleEvents = icache_.controller().throttleEvents();
    a.resizingTagBits = icache_.params().resizingTagBits();
    // Gated-Vdd keeps no drowsy lines, so probes never force wakes;
    // invalidations and refetches map straight from the cache.
    a.coherenceInvalidations = icache_.coherenceInvalidations();
    a.coherenceRefetches = icache_.coherenceRefetches();
    return a;
}

} // namespace drisim
