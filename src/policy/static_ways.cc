/**
 * @file
 * StaticWays policy: constant way gating, no dynamics.
 */

#include "policy/static_ways.hh"

#include <algorithm>

#include "util/logging.hh"

namespace drisim
{

StaticWaysCache::StaticWaysCache(const PolicyConfig &config,
                                 MemoryLevel *below,
                                 stats::StatGroup *parent)
    : PolicyCacheBase(config, below, parent, "ways_l1i"),
      activeWays_(std::clamp(config.ways.activeWays, 1u,
                             config.dri.assoc))
{
    if (config.ways.activeWays < 1 ||
        config.ways.activeWays > config.dri.assoc) {
        warn("static-ways: active ways %u clamped to %u (assoc %u; "
             "way 0 is never gated)",
             config.ways.activeWays, activeWays_, config.dri.assoc);
    }
}

PolicyActivity
StaticWaysCache::activity() const
{
    PolicyActivity a = baseActivity();
    // The gated ways are constant for the whole run; report the
    // exact ratio rather than the time integral (identical values,
    // without accumulated floating-point noise).
    a.avgActiveFraction = activeFraction();
    a.avgDrowsyFraction = 0.0;
    return a;
}

} // namespace drisim
