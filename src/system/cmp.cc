/**
 * @file
 * CmpSystem: N trace-driven cores with private L1s round-robin
 * interleaved over a shared (optionally resizable) L2.
 */

#include "system/cmp.hh"

#include <algorithm>
#include <map>

#include "obs/metrics.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace drisim
{

SharedL2Bus::SharedL2Bus(MemoryLevel *l2, unsigned blockBytes,
                         unsigned banks, Cycles penalty,
                         unsigned cores)
    : l2_(l2),
      blockBytes_(blockBytes),
      penalty_(penalty),
      lastOwner_(std::max(1u, banks), -1),
      stats_(cores)
{
    drisim_assert(l2 != nullptr, "bus needs a shared level");
    drisim_assert(blockBytes > 0, "bank granule must be positive");
}

void
SharedL2Bus::enableCoherence(const CoherenceConfig &cfg,
                             unsigned cores)
{
    drisim_assert(!coherence_, "coherence already enabled");
    coherence_ = std::make_unique<CoherenceController>(cfg, cores,
                                                       blockBytes_);
}

AccessResult
SharedL2Bus::access(unsigned core, Addr addr, AccessType type,
                    Cycles now)
{
    drisim_assert(core < stats_.size(), "bad bus port %u", core);
    // Block-interleaved banks: charge the contention adder when the
    // bank's previous user was another core. With one core the
    // owner never changes hands and the adder never fires, so the
    // single-core system is latency-identical to a direct L1->L2
    // connection. The adder delays the request's *arrival* below
    // the bus as well as its completion — computed up front and
    // folded into `now`, so banked DRAM queueing sees the true
    // schedule instead of requests landing penalty_ cycles early.
    const std::size_t bank = static_cast<std::size_t>(
        (addr / blockBytes_) % lastOwner_.size());
    const int self = static_cast<int>(core);
    PortStats &s = stats_[core];
    Cycles adder = 0;
    if (lastOwner_[bank] != self) {
        if (lastOwner_[bank] >= 0) {
            adder = penalty_;
            ++s.contention;
        }
        lastOwner_[bank] = self;
    }
    AccessResult r = l2_->accessAt(addr, type, now + adder);
    ++s.accesses;
    if (!r.hit) {
        ++s.misses;
        // Attribute the below-bus fill time to the requester;
        // writeback probes carry no demand latency.
        if (type != AccessType::Store)
            s.missLatency += r.latency;
    }
    r.latency += adder;
    return r;
}

CmpSystem::CmpSystem(const CmpConfig &cmp, const HierarchyParams &hier,
                     const OooParams &coreParams,
                     const std::vector<const ProgramImage *> &images,
                     stats::StatGroup *parent)
    : cmp_(cmp), hier_(hier)
{
    const unsigned n = cmp.cores;
    drisim_assert(n >= 1 && n <= kMaxCmpCores,
                  "cores must be in [1, %u], got %u", kMaxCmpCores,
                  n);
    drisim_assert(images.size() == n,
                  "need one program image per core (%zu != %u)",
                  images.size(), n);

    if (hier.dram.banked) {
        dram_ = std::make_unique<Dram>(hier.dram, hier.l2.blockBytes,
                                       parent);
        memLevel_ = dram_.get();
    } else {
        mem_ = std::make_unique<MainMemory>(hier.l2.blockBytes,
                                            parent);
        memLevel_ = mem_.get();
    }
    if (hier.l2Dri) {
        driL2_ = std::make_unique<ResizableCache>(
            driParamsForLevel(hier.l2, hier.l2DriParams),
            ResizePolicy::writeback(), memLevel_, parent, "dri_l2");
        l2Level_ = driL2_.get();
    } else {
        convL2_ =
            std::make_unique<Cache>(hier.l2, memLevel_, parent);
        l2Level_ = convL2_.get();
    }
    bus_ = std::make_unique<SharedL2Bus>(
        l2Level_, hier.l2.blockBytes, cmp.l2Banks,
        cmp.l2ContentionPenalty, n);
    if (cmp.coherence.enabled)
        bus_->enableCoherence(cmp.coherence, n);

    convL1is_.resize(n);
    driL1is_.resize(n);
    policyL1is_.resize(n);
    for (unsigned k = 0; k < n; ++k) {
        cpuGroups_.push_back(std::make_unique<stats::StatGroup>(
            parent, strFormat("cpu%u", k)));
        stats::StatGroup *grp = cpuGroups_.back().get();
        ports_.push_back(
            std::make_unique<SharedL2Port>(bus_.get(), k));
        SharedL2Port *port = ports_.back().get();
        l1ds_.push_back(
            std::make_unique<Cache>(hier.l1d, port, grp));

        const CmpCoreConfig cfg = cmp.coreConfig(k);
        MemoryLevel *l1i = nullptr;
        if (cfg.dri && cfg.policyKind == PolicyKind::Dri) {
            // The classic path, byte-identical to pre-policy
            // builds (locked by the CMP goldens).
            driL1is_[k] = std::make_unique<DriICache>(
                driParamsForLevel(hier.l1i, cfg.driParams), port,
                grp);
            l1i = driL1is_[k].get();
        } else if (cfg.dri) {
            PolicyConfig pc;
            pc.kind = cfg.policyKind;
            pc.dri = driParamsForLevel(hier.l1i, cfg.driParams);
            pc.decay = cfg.decay;
            pc.drowsy = cfg.drowsy;
            pc.ways = cfg.ways;
            policyL1is_[k] = makeLeakagePolicy(pc, port, grp);
            l1i = policyL1is_[k]->level();
        } else {
            convL1is_[k] =
                std::make_unique<Cache>(hier.l1i, port, grp);
            l1i = convL1is_[k].get();
        }
        // Coherent runs attach every private L1 to the fabric: the
        // bus is the requester-side agent, and the controller probes
        // the L1D and the L1I (whatever flavour) as core k.
        if (CoherenceController *cc = bus_->coherence()) {
            l1ds_.back()->setCoherence(bus_.get(), k);
            cc->addClient(k, l1ds_.back().get());
            if (convL1is_[k]) {
                convL1is_[k]->setCoherence(bus_.get(), k);
                cc->addClient(k, convL1is_[k].get());
            } else if (driL1is_[k]) {
                driL1is_[k]->setCoherence(bus_.get(), k);
                cc->addClient(k, driL1is_[k].get());
            } else if (auto *pc = dynamic_cast<Cache *>(
                           policyL1is_[k]->level())) {
                pc->setCoherence(bus_.get(), k);
                cc->addClient(k, pc);
            } else if (auto *rc = dynamic_cast<ResizableCache *>(
                           policyL1is_[k]->level())) {
                rc->setCoherence(bus_.get(), k);
                cc->addClient(k, rc);
            }
        }
        cores_.push_back(std::make_unique<OooCore>(
            coreParams, l1i, l1ds_.back().get(), grp));
        if (driL1is_[k])
            cores_.back()->addResizable(driL1is_[k].get());
        if (policyL1is_[k])
            cores_.back()->addRetireSink(policyL1is_[k].get());
        gens_.push_back(
            std::make_unique<TraceGenerator>(*images[k]));
    }

    // A shared resizable L2 senses per-core progress directly when
    // there is only one core (the exact single-core runner wiring);
    // with several cores the scheduler drives it from system-wide
    // progress instead (see run()).
    if (n == 1 && driL2_)
        cores_[0]->addResizable(driL2_.get());
}

CmpRunOutput
CmpSystem::run(InstCount maxInstrsPerCore)
{
    const unsigned n = cores();
    std::vector<InstCount> remaining(n, maxInstrsPerCore);
    Cycles sysClock = 0;

    // Per-core interval metrics (observation only): each core is
    // sampled once its committed-instruction count has advanced by
    // the recorder interval since its previous sample. Probes read
    // cumulative state; the recorder rows carry interval deltas
    // (counters) or cycle-area fractions, mirroring the single-core
    // runner's sampler so downstream reports treat both alike.
    obs::TimeSeriesRecorder *metrics =
        obsSeries_.empty() ? nullptr : obs::metrics();
    struct ObsPrev
    {
        std::map<std::string, double> vals;
        InstCount instrs = 0;
    };
    std::vector<ObsPrev> obsPrev(metrics ? n : 0);
    const InstCount obsInterval = metrics ? metrics->interval() : 0;

    auto readCore = [&](unsigned k) {
        std::map<std::string, double> v;
        const CoreStats cs = cores_[k]->stats();
        v["cycles"] = static_cast<double>(cs.cycles);
        if (driL1is_[k]) {
            const DriICache &ic = *driL1is_[k];
            v["l1i_accesses"] =
                static_cast<double>(ic.accesses());
            v["l1i_misses"] = static_cast<double>(ic.misses());
            v["active_cycle_area"] =
                ic.averageActiveFraction() *
                static_cast<double>(cs.cycles);
            v["active_bytes"] =
                static_cast<double>(ic.currentSizeBytes());
            v["resizes"] = static_cast<double>(ic.upsizes() +
                                               ic.downsizes());
        } else if (policyL1is_[k]) {
            const LeakagePolicy &p = *policyL1is_[k];
            const PolicyActivity act = p.activity();
            v["l1i_accesses"] =
                static_cast<double>(p.l1Accesses());
            v["l1i_misses"] = static_cast<double>(p.l1Misses());
            v["l1i_size_bytes"] =
                static_cast<double>(hier_.l1i.sizeBytes);
            v["active_cycle_area"] =
                act.avgActiveFraction *
                static_cast<double>(cs.cycles);
            v["drowsy_cycle_area"] =
                act.avgDrowsyFraction *
                static_cast<double>(cs.cycles);
            v["resizes"] = static_cast<double>(act.resizes);
            v["wakes"] =
                static_cast<double>(act.wakeTransitions);
            v["wake_stall_cycles"] =
                static_cast<double>(act.wakeStallCycles);
        } else {
            const Cache &ic = *convL1is_[k];
            v["l1i_accesses"] =
                static_cast<double>(ic.accesses());
            v["l1i_misses"] = static_cast<double>(ic.misses());
            v["active_cycle_area"] =
                static_cast<double>(cs.cycles);
            v["active_bytes"] =
                static_cast<double>(hier_.l1i.sizeBytes);
        }
        v["l2_accesses"] =
            static_cast<double>(bus_->accesses(k));
        v["l2_misses"] = static_cast<double>(bus_->misses(k));
        if (const CoherenceController *cc = bus_->coherence()) {
            v["coherence_invalidations"] = static_cast<double>(
                cc->coreStats(k).invalidationsReceived);
            if (policyL1is_[k]) {
                const PolicyActivity act =
                    policyL1is_[k]->activity();
                v["coherence_wakes"] =
                    static_cast<double>(act.coherenceWakes);
                v["coherence_refetches"] =
                    static_cast<double>(act.coherenceRefetches);
            } else if (driL1is_[k]) {
                v["coherence_refetches"] = static_cast<double>(
                    driL1is_[k]->coherenceRefetches());
            }
        }
        return v;
    };

    auto sampleCore = [&](unsigned k) {
        std::map<std::string, double> cur = readCore(k);
        ObsPrev &p = obsPrev[k];
        auto has = [&](const char *name) {
            return cur.count(name) > 0;
        };
        auto delta = [&](const char *name) {
            const auto it = cur.find(name);
            const double now =
                it == cur.end() ? 0.0 : it->second;
            const auto pit = p.vals.find(name);
            const double was =
                pit == p.vals.end() ? 0.0 : pit->second;
            return now - was;
        };
        auto clamp01 = [](double f) {
            return std::min(1.0, std::max(0.0, f));
        };

        const CoreStats cs = cores_[k]->stats();
        const double dc = delta("cycles");
        const double di =
            static_cast<double>(cs.instructions - p.instrs);
        std::vector<std::pair<std::string, double>> out;
        out.emplace_back("cycles", dc);
        out.emplace_back("cpi", di > 0.0 ? dc / di : 0.0);
        const double dAcc = delta("l1i_accesses");
        out.emplace_back("l1i_miss_rate",
                         dAcc > 0.0 ? delta("l1i_misses") / dAcc
                                    : 0.0);
        const double activeFraction =
            dc > 0.0 ? clamp01(delta("active_cycle_area") / dc)
                     : 0.0;
        out.emplace_back("active_fraction", activeFraction);
        if (has("drowsy_cycle_area"))
            out.emplace_back(
                "drowsy_fraction",
                dc > 0.0
                    ? clamp01(delta("drowsy_cycle_area") / dc)
                    : 0.0);
        if (has("active_bytes"))
            out.emplace_back("active_bytes",
                             cur.at("active_bytes"));
        else if (has("l1i_size_bytes"))
            out.emplace_back("active_bytes",
                             activeFraction *
                                 cur.at("l1i_size_bytes"));
        const double dL2 = delta("l2_accesses");
        out.emplace_back("l2_miss_rate",
                         dL2 > 0.0 ? delta("l2_misses") / dL2
                                   : 0.0);
        for (const char *name :
             {"resizes", "wakes", "wake_stall_cycles",
              "coherence_invalidations", "coherence_wakes",
              "coherence_refetches"})
            if (has(name))
                out.emplace_back(name, delta(name));

        metrics->record(obsSeries_ + "/core" + std::to_string(k),
                        cs.instructions, std::move(out));
        p.vals = std::move(cur);
        p.instrs = cs.instructions;
    };

    while (true) {
        bool pending = false;
        bool progressed = false;
        InstCount roundRetired = 0;

        for (unsigned k = 0; k < n; ++k) {
            if (remaining[k] == 0)
                continue;
            if (cores_[k]->drained()) {
                remaining[k] = 0;
                continue;
            }
            const InstCount turn =
                (n == 1 || cmp_.quantum == 0)
                    ? remaining[k]
                    : std::min(cmp_.quantum, remaining[k]);
            const InstCount before =
                cores_[k]->stats().instructions;
            cores_[k]->run(*gens_[k], turn);
            const InstCount done =
                cores_[k]->stats().instructions - before;
            roundRetired += done;
            if (done > 0)
                progressed = true;
            remaining[k] -= std::min(done, remaining[k]);
            if (cores_[k]->drained())
                remaining[k] = 0;
            if (remaining[k] > 0)
                pending = true;
            if (metrics &&
                cores_[k]->stats().instructions -
                        obsPrev[k].instrs >=
                    obsInterval)
                sampleCore(k);
        }

        // The shared resizable L2 belongs to no single core: its
        // sense interval counts instructions retired anywhere in
        // the system and its active-size integral runs on the
        // system clock (the slowest core's local time).
        if (n > 1 && driL2_) {
            if (roundRetired > 0)
                driL2_->retireInstructions(roundRetired);
            Cycles clock = 0;
            for (unsigned k = 0; k < n; ++k)
                clock =
                    std::max(clock, cores_[k]->stats().cycles);
            if (clock > sysClock) {
                driL2_->integrateCycles(clock - sysClock);
                sysClock = clock;
            }
        }

        if (!pending)
            break;
        drisim_assert(progressed,
                      "CMP scheduler made no progress");
    }

    // Tail sample: whatever each core committed since its last
    // full interval still shows up in the series.
    if (metrics)
        for (unsigned k = 0; k < n; ++k)
            if (cores_[k]->stats().instructions >
                obsPrev[k].instrs)
                sampleCore(k);

    CmpRunOutput out;
    out.cores.resize(n);
    for (unsigned k = 0; k < n; ++k) {
        CmpCoreOutput &c = out.cores[k];
        const CoreStats cs = cores_[k]->stats();
        c.meas.cycles = cs.cycles;
        c.meas.instructions = cs.instructions;
        if (driL1is_[k]) {
            const DriICache &ic = *driL1is_[k];
            c.meas.l1iAccesses = ic.accesses();
            c.meas.l1iMisses = ic.misses();
            c.meas.avgActiveFraction = ic.averageActiveFraction();
            c.meas.resizingTagBits = ic.params().resizingTagBits();
            c.meas.l1iBytes = ic.params().sizeBytes;
            c.resizes = ic.upsizes() + ic.downsizes();
            c.throttleEvents = ic.controller().throttleEvents();
        } else if (policyL1is_[k]) {
            const LeakagePolicy &p = *policyL1is_[k];
            const PolicyActivity act = p.activity();
            c.meas.l1iAccesses = p.l1Accesses();
            c.meas.l1iMisses = p.l1Misses();
            c.meas.avgActiveFraction = act.avgActiveFraction;
            c.meas.resizingTagBits = act.resizingTagBits;
            c.meas.l1iBytes = hier_.l1i.sizeBytes;
            c.resizes = act.resizes;
            c.throttleEvents = act.throttleEvents;
            c.l1DrowsyFraction = act.avgDrowsyFraction;
            c.l1GatedFraction =
                std::max(0.0, 1.0 - act.avgActiveFraction -
                                  act.avgDrowsyFraction);
            c.wakeTransitions = act.wakeTransitions;
            c.wakeStallCycles = act.wakeStallCycles;
        } else {
            const Cache &ic = *convL1is_[k];
            c.meas.l1iAccesses = ic.accesses();
            c.meas.l1iMisses = ic.misses();
            c.meas.avgActiveFraction = 1.0;
            c.meas.resizingTagBits = 0;
            c.meas.l1iBytes = hier_.l1i.sizeBytes;
        }
        c.ipc = cs.ipc();
        c.l1dMissRate = l1ds_[k]->missRate();
        c.l2Accesses = bus_->accesses(k);
        c.l2Misses = bus_->misses(k);
        c.l2ContentionEvents = bus_->contentionEvents(k);
        c.l2MissLatencyCycles = bus_->missLatency(k);
        if (const CoherenceController *cc = bus_->coherence()) {
            const CoherenceController::CoreStats &ccs =
                cc->coreStats(k);
            c.coherenceInvalidationsReceived =
                ccs.invalidationsReceived;
            c.coherenceInvalidationsCaused =
                ccs.invalidationsCaused;
            c.coherenceDowngrades = ccs.downgradesReceived;
            c.coherenceWritebacks = ccs.coherenceWritebacks;
            c.coherenceMsgCycles = ccs.messageCycles;
            if (policyL1is_[k]) {
                const PolicyActivity act =
                    policyL1is_[k]->activity();
                c.coherenceWakes = act.coherenceWakes;
                c.coherenceRefetches = act.coherenceRefetches;
            } else if (driL1is_[k]) {
                c.coherenceRefetches =
                    driL1is_[k]->coherenceRefetches();
            }
        }

        out.systemCycles = std::max(out.systemCycles, cs.cycles);
        out.l2Accesses += c.l2Accesses;
        out.l2Misses += c.l2Misses;
        out.l2ContentionEvents += c.l2ContentionEvents;
        out.l2MissLatencyCycles += c.l2MissLatencyCycles;
        out.coherenceInvalidations +=
            c.coherenceInvalidationsReceived;
        out.coherenceDowngrades += c.coherenceDowngrades;
        out.coherenceWritebacks += c.coherenceWritebacks;
        out.coherenceMsgCycles += c.coherenceMsgCycles;

        // MSHR activity over this core's private levels (policy
        // wrappers keep theirs in their own stat groups).
        out.mshrCoalesced += l1ds_[k]->mshrCoalesced();
        out.mshrFullStalls += l1ds_[k]->mshrFullStalls();
        out.mshrPeakOccupancy = std::max(
            out.mshrPeakOccupancy, l1ds_[k]->mshrPeakOccupancy());
        if (convL1is_[k]) {
            out.mshrCoalesced += convL1is_[k]->mshrCoalesced();
            out.mshrFullStalls += convL1is_[k]->mshrFullStalls();
            out.mshrPeakOccupancy =
                std::max(out.mshrPeakOccupancy,
                         convL1is_[k]->mshrPeakOccupancy());
        } else if (driL1is_[k]) {
            out.mshrCoalesced += driL1is_[k]->mshrCoalesced();
            out.mshrFullStalls += driL1is_[k]->mshrFullStalls();
            out.mshrPeakOccupancy =
                std::max(out.mshrPeakOccupancy,
                         driL1is_[k]->mshrPeakOccupancy());
        }
    }
    out.l2MissRate =
        out.l2Accesses == 0
            ? 0.0
            : static_cast<double>(out.l2Misses) /
                  static_cast<double>(out.l2Accesses);
    out.memAccesses = memAccesses();
    if (driL2_) {
        out.l2SizeBytes = driL2_->params().sizeBytes;
        out.l2AvgActiveFraction = driL2_->averageActiveFraction();
        out.l2ResizingTagBits = driL2_->params().resizingTagBits();
        out.l2Resizes = driL2_->upsizes() + driL2_->downsizes();
        out.mshrCoalesced += driL2_->mshrCoalesced();
        out.mshrFullStalls += driL2_->mshrFullStalls();
        out.mshrPeakOccupancy = std::max(
            out.mshrPeakOccupancy, driL2_->mshrPeakOccupancy());
    } else {
        out.l2SizeBytes = hier_.l2.sizeBytes;
        out.mshrCoalesced += convL2_->mshrCoalesced();
        out.mshrFullStalls += convL2_->mshrFullStalls();
        out.mshrPeakOccupancy = std::max(
            out.mshrPeakOccupancy, convL2_->mshrPeakOccupancy());
    }
    if (const CoherenceController *cc = bus_->coherence())
        out.directoryEvictions =
            cc->directory().capacityEvictions();
    if (dram_) {
        out.dramRowHits = dram_->rowHits();
        out.dramRowMisses = dram_->rowMisses();
        out.dramQueueFullEvents = dram_->queueFullEvents();
        out.dramBusyCycles = dram_->busyCycles();
        out.dramBankRowHits.resize(dram_->params().banks);
        for (unsigned b = 0; b < dram_->params().banks; ++b)
            out.dramBankRowHits[b] = dram_->rowHitsForBank(b);
    }
    return out;
}

MainMemory &
CmpSystem::mem()
{
    drisim_assert(mem_ != nullptr,
                  "CMP was built with banked DRAM; use dram() or "
                  "memAccesses()");
    return *mem_;
}

std::uint64_t
CmpSystem::memAccesses() const
{
    return mem_ ? mem_->accesses() : dram_->accesses();
}

} // namespace drisim
