/**
 * @file
 * The chip-multiprocessor system: N cores, each with a private L1
 * i-cache (conventional or DRI) and L1 d-cache and its own workload,
 * sharing one unified L2 (conventional or resizable) and main
 * memory.
 *
 * The paper evaluates gated-Vdd resizing on a single core; leakage
 * pressure is worst where SRAM is largest and shared — the CMP
 * last-level cache (Safayenikoo et al.) and multi-level hierarchies
 * generally (Bai et al.; see docs/REPRODUCTION.md, Multiprogrammed
 * CMP study). CmpSystem opens that scenario family: multiprogrammed
 * mixes whose private DRI L1 i-caches compete for one shared
 * resizable L2.
 *
 * Execution model: trace-driven cores are interleaved round-robin in
 * instruction quanta (each core keeps its own local clock; the
 * system clock is the max). The shared L2 is reached through
 * per-core ports on a bus that attributes hits/misses to the
 * requesting core and charges a simple bank-contention latency adder
 * when consecutive references to a bank come from different cores —
 * with one core the adder never fires and the system degenerates
 * exactly to the single-core wiring (locked by tests).
 */

#ifndef DRISIM_SYSTEM_CMP_HH
#define DRISIM_SYSTEM_CMP_HH

#include <memory>
#include <string>
#include <vector>

#include "cpu/ooo_core.hh"
#include "energy/energy_model.hh"
#include "mem/directory.hh"
#include "mem/hierarchy.hh"
#include "policy/leakage_policy.hh"
#include "workload/generator.hh"

namespace drisim
{

/** Sanity cap for `cores=` (queues, not threads — purely a model). */
constexpr unsigned kMaxCmpCores = 64;

/** Per-core workload and L1I flavour. */
struct CmpCoreConfig
{
    /** Benchmark name; empty means "caller's default". */
    std::string bench;
    /** Build this core's L1I leakage-managed (vs conventional). */
    bool dri = false;
    /** L1I resize knobs (geometry always follows hier.l1i). */
    DriParams driParams{};

    /**
     * Which leakage technique manages the L1I when dri is set.
     * Dri takes driParams through the classic DriICache path
     * (byte-identical to pre-policy builds); Decay/Drowsy/
     * StaticWays take the matching knobs below (geometry still
     * follows hier.l1i).
     */
    PolicyKind policyKind = PolicyKind::Dri;
    DecayParams decay{};
    DrowsyParams drowsy{};
    StaticWaysParams ways{};
};

/** Shape of the CMP: core count, scheduling, L2 sharing model. */
struct CmpConfig
{
    unsigned cores = 1;
    /**
     * Round-robin turn length in instructions. With one core the
     * scheduler runs the whole budget in a single turn (no sharing
     * to interleave), which keeps cores=1 bit-identical to the
     * single-core runner path.
     */
    InstCount quantum = 20 * 1000;
    /** Shared-L2 bank count for the contention adder. */
    unsigned l2Banks = 8;
    /** Extra latency when a bank's last user was another core. */
    Cycles l2ContentionPenalty = 4;
    /**
     * MSI coherence over the private L1s (mem/directory.hh).
     * Disabled by default: multiprogrammed mixes with private data
     * need no protocol and stay bit-identical to pre-coherence
     * builds (locked by the CMP goldens).
     */
    CoherenceConfig coherence{};
    /** Sparse per-core overrides; missing entries take defaults. */
    std::vector<CmpCoreConfig> coreConfigs;

    /** Core @p k's config, defaulted when not explicitly given. */
    CmpCoreConfig coreConfig(unsigned k) const
    {
        return k < coreConfigs.size() ? coreConfigs[k]
                                      : CmpCoreConfig{};
    }
};

/** What one core of a finished CMP run produced. */
struct CmpCoreOutput
{
    /** Benchmark this core ran (filled by the harness). */
    std::string bench;
    RunMeasurement meas;
    double ipc = 0.0;
    double l1dMissRate = 0.0;
    std::uint64_t resizes = 0;
    std::uint64_t throttleEvents = 0;
    /** This core's share of the shared-L2 traffic. */
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    /** Shared-L2 references that paid the bank-contention adder. */
    std::uint64_t l2ContentionEvents = 0;
    /** Cycles this core's demand L2 misses spent below the bus —
     *  the load-dependent part under banked DRAM. */
    std::uint64_t l2MissLatencyCycles = 0;

    /** Leakage-policy activity (policy-managed cores only). The
     *  gated fraction is the state-destroying remainder that the
     *  CMP accounting charges at the Table 2 residual; classic DRI
     *  cores leave it zero (paper convention). */
    double l1DrowsyFraction = 0.0;
    double l1GatedFraction = 0.0;
    std::uint64_t wakeTransitions = 0;
    std::uint64_t wakeStallCycles = 0;

    /** Coherence attribution (coherent runs only; zero otherwise).
     *  Received = probes landing on this core's L1s; caused =
     *  invalidations this core's writes forced elsewhere. */
    std::uint64_t coherenceInvalidationsReceived = 0;
    std::uint64_t coherenceInvalidationsCaused = 0;
    std::uint64_t coherenceDowngrades = 0;
    std::uint64_t coherenceWritebacks = 0;
    /** Message cycles charged to this core's requests. */
    std::uint64_t coherenceMsgCycles = 0;
    /** Policy-visible coherence effects (policy-managed L1Is). */
    std::uint64_t coherenceWakes = 0;
    std::uint64_t coherenceRefetches = 0;
};

/** What one CMP run produced. */
struct CmpRunOutput
{
    std::vector<CmpCoreOutput> cores;

    /** System time: the slowest core's local clock. */
    Cycles systemCycles = 0;

    /** Shared-L2 view (sums of the per-core attributions). */
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    double l2MissRate = 0.0;
    std::uint64_t l2ContentionEvents = 0;
    std::uint64_t memAccesses = 0;

    /** L2 activity (defaults describe a fixed, fully-powered L2). */
    std::uint64_t l2SizeBytes = 0;
    double l2AvgActiveFraction = 1.0;
    unsigned l2ResizingTagBits = 0;
    std::uint64_t l2Resizes = 0;

    /** Demand-miss latency summed over cores (see CmpCoreOutput). */
    std::uint64_t l2MissLatencyCycles = 0;

    /** MSHR activity summed over every cache level (zero when the
     *  system runs the blocking default). */
    std::uint64_t mshrCoalesced = 0;
    std::uint64_t mshrFullStalls = 0;
    std::uint64_t mshrPeakOccupancy = 0;

    /** Banked-DRAM activity (zero in flat mode). */
    std::uint64_t dramRowHits = 0;
    std::uint64_t dramRowMisses = 0;
    std::uint64_t dramQueueFullEvents = 0;
    std::uint64_t dramBusyCycles = 0;
    std::vector<std::uint64_t> dramBankRowHits;

    /** Coherence totals (sums over cores; zero when disabled). */
    std::uint64_t coherenceInvalidations = 0;
    std::uint64_t coherenceDowngrades = 0;
    std::uint64_t coherenceWritebacks = 0;
    std::uint64_t coherenceMsgCycles = 0;
    /** Directory capacity evictions (each forced invalidations). */
    std::uint64_t directoryEvictions = 0;
};

/**
 * The shared-L2 interconnect: per-core ports funnel into one access
 * path that counts per-core hits/misses and applies the
 * bank-contention latency adder. Banks are block-interleaved.
 */
class SharedL2Bus : public CoherenceAgent
{
  public:
    /**
     * @param l2         the shared level every port forwards to
     * @param blockBytes L2 block size (bank interleaving granule)
     * @param banks      bank count (>= 1)
     * @param penalty    extra cycles when the bank's previous user
     *                   was a different core
     */
    SharedL2Bus(MemoryLevel *l2, unsigned blockBytes, unsigned banks,
                Cycles penalty, unsigned cores);

    AccessResult access(unsigned core, Addr addr, AccessType type,
                        Cycles now = 0);

    std::uint64_t accesses(unsigned core) const
    {
        return stats_[core].accesses;
    }
    std::uint64_t misses(unsigned core) const
    {
        return stats_[core].misses;
    }
    std::uint64_t contentionEvents(unsigned core) const
    {
        return stats_[core].contention;
    }
    /** Cycles @p core's demand misses spent below the bus. */
    std::uint64_t missLatency(unsigned core) const
    {
        return stats_[core].missLatency;
    }

    MemoryLevel *level() { return l2_; }

    /**
     * Build the MSI controller + sparse directory this bus routes
     * probes through (coherent CMP runs). The coherence granule is
     * the L2 block size. Must be called before the L1s register as
     * clients; off by default (coherence() then stays null and the
     * agent methods are free no-ops).
     */
    void enableCoherence(const CoherenceConfig &cfg, unsigned cores);

    CoherenceController *coherence() { return coherence_.get(); }
    const CoherenceController *coherence() const
    {
        return coherence_.get();
    }

    // CoherenceAgent: requester-side entry points (L1 fills and
    // write upgrades land here; the controller does the routing).
    Cycles coherentFill(unsigned core, Addr addr,
                        bool exclusive) override
    {
        return coherence_ ? coherence_->fill(core, addr, exclusive)
                          : 0;
    }
    Cycles coherentUpgrade(unsigned core, Addr addr) override
    {
        return coherence_ ? coherence_->upgrade(core, addr) : 0;
    }

  private:
    struct PortStats
    {
        std::uint64_t accesses = 0;
        std::uint64_t misses = 0;
        std::uint64_t contention = 0;
        std::uint64_t missLatency = 0;
    };

    MemoryLevel *l2_;
    unsigned blockBytes_;
    Cycles penalty_;
    /** Last core to touch each bank (-1 = untouched). */
    std::vector<int> lastOwner_;
    std::vector<PortStats> stats_;
    std::unique_ptr<CoherenceController> coherence_;
};

/** One core's window onto the shared L2 (a MemoryLevel adapter). */
class SharedL2Port : public MemoryLevel
{
  public:
    SharedL2Port(SharedL2Bus *bus, unsigned core)
        : bus_(bus), core_(core)
    {
    }

    AccessResult access(Addr addr, AccessType type) override
    {
        return bus_->access(core_, addr, type);
    }

    AccessResult accessAt(Addr addr, AccessType type,
                          Cycles now) override
    {
        return bus_->access(core_, addr, type, now);
    }

    double activeFraction() const override
    {
        return bus_->level()->activeFraction();
    }

  private:
    SharedL2Bus *bus_;
    unsigned core_;
};

/**
 * Owns the whole CMP: memory, the shared L2 (conventional or
 * resizable, per hier.l2Dri), the bus, and per core a port, an L1D,
 * an L1I (conventional or DRI, per CmpCoreConfig) and an OooCore
 * fed by its own trace generator.
 */
class CmpSystem
{
  public:
    /**
     * @param cmp        CMP shape + per-core flavours
     * @param hier       per-core L1 geometry and the shared L2
     *                   (hier.l2Dri selects the resizable flavour)
     * @param coreParams pipeline shape shared by all cores
     * @param images     one program image per core (must outlive
     *                   this object)
     * @param parent     stats parent
     */
    CmpSystem(const CmpConfig &cmp, const HierarchyParams &hier,
              const OooParams &coreParams,
              const std::vector<const ProgramImage *> &images,
              stats::StatGroup *parent);

    /**
     * Round-robin the cores until each has committed
     * @p maxInstrsPerCore instructions (or drained its stream).
     * The shared resizable L2 (if any) senses system-wide progress:
     * retirements summed over cores, time as the system clock.
     */
    CmpRunOutput run(InstCount maxInstrsPerCore);

    unsigned cores() const
    {
        return static_cast<unsigned>(cores_.size());
    }
    OooCore &core(unsigned k) { return *cores_[k]; }
    const SharedL2Bus &bus() const { return *bus_; }
    /** Core @p k's policy L1I, or nullptr (conventional/DRI). */
    LeakagePolicy *policyL1i(unsigned k)
    {
        return policyL1is_[k].get();
    }
    ResizableCache *driL2() { return driL2_.get(); }
    Cache *convL2() { return convL2_.get(); }

    /** The flat memory (fatal if banked DRAM was built). */
    MainMemory &mem();

    /** Banked DRAM if built, else nullptr. */
    Dram *dram() { return dram_.get(); }

    /** Memory accesses regardless of flavour. */
    std::uint64_t memAccesses() const;

    /**
     * Enable per-core interval metrics: when the global interval
     * recorder (obs/metrics.hh) is live, run() records a sample
     * under "<prefix>/core<k>" every recorder interval of committed
     * instructions per core. Observation only — simulated state and
     * results are untouched.
     */
    void setObsSeries(std::string prefix)
    {
        obsSeries_ = std::move(prefix);
    }

  private:
    CmpConfig cmp_;
    HierarchyParams hier_;

    std::unique_ptr<MainMemory> mem_;
    std::unique_ptr<Dram> dram_;
    MemoryLevel *memLevel_ = nullptr;
    std::unique_ptr<Cache> convL2_;
    std::unique_ptr<ResizableCache> driL2_;
    MemoryLevel *l2Level_ = nullptr;
    std::unique_ptr<SharedL2Bus> bus_;

    std::vector<std::unique_ptr<stats::StatGroup>> cpuGroups_;
    std::vector<std::unique_ptr<SharedL2Port>> ports_;
    std::vector<std::unique_ptr<Cache>> l1ds_;
    std::vector<std::unique_ptr<Cache>> convL1is_;
    std::vector<std::unique_ptr<DriICache>> driL1is_;
    std::vector<std::unique_ptr<LeakagePolicy>> policyL1is_;
    std::vector<std::unique_ptr<OooCore>> cores_;
    std::vector<std::unique_ptr<TraceGenerator>> gens_;

    /** Interval-metrics series prefix; empty = no sampling. */
    std::string obsSeries_;
};

} // namespace drisim

#endif // DRISIM_SYSTEM_CMP_HH
