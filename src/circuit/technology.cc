/**
 * @file
 * Process-technology parameter sets (0.18 um base and scaled corners).
 */

#include "circuit/technology.hh"

namespace drisim::circuit
{

Technology
Technology::scaled018()
{
    return Technology{};
}

Technology
Technology::atTemperature(double kelvin) const
{
    Technology t = *this;
    t.temperatureK = kelvin;
    return t;
}

} // namespace drisim::circuit
