/**
 * @file
 * MOSFET subthreshold-leakage and alpha-power drive models, plus the
 * series-stack solver behind the stacking effect.
 */

#include "circuit/transistor.hh"

#include <cmath>

#include "util/logging.hh"

namespace drisim::circuit
{

namespace
{

/** Per-polarity leakage scale (A/um). */
double
leakScale(const Technology &tech, Polarity p)
{
    return p == Polarity::Nmos ? tech.i0NmosPerUm
                               : tech.i0NmosPerUm * tech.pmosLeakRatio;
}

/** Per-polarity drive scale (A/um at 1 V overdrive). */
double
driveScale(const Technology &tech, Polarity p)
{
    return p == Polarity::Nmos ? tech.kDrivePerUm
                               : tech.kDrivePerUm * tech.pmosDriveRatio;
}

} // namespace

double
subthresholdCurrent(const Technology &tech, const Mosfet &m,
                    double vgs, double vds)
{
    if (vds <= 0.0)
        return 0.0;
    const double vt_therm = tech.thermalVoltage();
    const double n = tech.subthresholdN;
    const double eta = m.dibl ? tech.diblEta : 0.0;
    const double exponent = (vgs - m.vt + eta * vds) / (n * vt_therm);
    const double drain_term = 1.0 - std::exp(-vds / vt_therm);
    return leakScale(tech, m.polarity) * m.widthUm * std::exp(exponent) *
           drain_term;
}

double
offCurrent(const Technology &tech, const Mosfet &m)
{
    return subthresholdCurrent(tech, m, 0.0, tech.vdd);
}

double
onCurrent(const Technology &tech, const Mosfet &m, double vgs)
{
    const double overdrive = vgs - m.vt;
    if (overdrive <= 0.0)
        return 0.0;
    return driveScale(tech, m.polarity) * m.widthUm *
           std::pow(overdrive, tech.alphaPower);
}

double
onResistance(const Technology &tech, const Mosfet &m, double vgs)
{
    const double ion = onCurrent(tech, m, vgs);
    if (ion <= 0.0)
        return 1e18;
    return tech.vdd / ion;
}

StackResult
solveSeriesStack(const Technology &tech, const Mosfet &top,
                 const Mosfet &bottom, double vgsBottom)
{
    drisim_assert(tech.vdd > 0.0, "stack solve needs positive Vdd");

    // topCurrent falls and bottomCurrent rises monotonically in Vx,
    // so bisection on their difference converges.
    auto top_current = [&](double vx) {
        // Source of the top composite device rides at Vx: Vgs = -Vx.
        return subthresholdCurrent(tech, top, -vx, tech.vdd - vx);
    };
    auto bottom_current = [&](double vx) {
        return subthresholdCurrent(tech, bottom, vgsBottom, vx);
    };

    double lo = 0.0;
    double hi = tech.vdd;
    for (int iter = 0; iter < 100; ++iter) {
        double mid = 0.5 * (lo + hi);
        if (top_current(mid) > bottom_current(mid))
            lo = mid;
        else
            hi = mid;
    }
    StackResult res;
    res.internalNodeV = 0.5 * (lo + hi);
    res.current = bottom_current(res.internalNodeV);
    return res;
}

} // namespace drisim::circuit
