/**
 * @file
 * Drowsy (state-preserving low-Vdd standby) SRAM cell figures — the
 * circuit substrate for the Drowsy leakage policy, sitting next to
 * the gated-Vdd model the way the two techniques sit next to each
 * other in the design space (Flautner et al., "Drowsy Caches", ISCA
 * 2002; Bai et al.'s state-preserving vs state-destroying trade-off,
 * PAPERS.md).
 *
 * Where gated-Vdd cuts the supply entirely — destroying the bit and
 * collapsing leakage by ~97% — a drowsy cell drops its supply rail
 * to a retention voltage just above the data-hold minimum. Leakage
 * falls super-linearly with the rail (the DIBL contribution to the
 * subthreshold exponent scales with Vds), the bit survives, and the
 * price is a short wake transition (recharging the rail) before the
 * line can be read again.
 *
 * The analytical model reuses the transistor substrate: standby
 * leakage is the cell's composite off-path evaluated at the
 * retention Vds with an explicit DIBL coefficient (the default
 * technology corner keeps eta = 0 because its Table 2 anchors are
 * all measured at Vds = Vdd; the drowsy figures are exactly the
 * low-Vds regime that coefficient exists for, so this model carries
 * its own calibrated eta). The default configuration reproduces the
 * drowsy paper's headline: ~6x leakage reduction at a 1-cycle wake.
 */

#ifndef DRISIM_CIRCUIT_DROWSY_CELL_HH
#define DRISIM_CIRCUIT_DROWSY_CELL_HH

#include "circuit/sram_cell.hh"
#include "circuit/technology.hh"
#include "util/types.hh"

namespace drisim::circuit
{

/** Standby-rail and wake options for a drowsy cell. */
struct DrowsyCellConfig
{
    /**
     * Retention supply voltage (V). Flautner et al. hold data at
     * ~1.5x the cell's worst-case retention minimum; 0.3 V at the
     * 1.0 V corner.
     */
    double standbyVddV = 0.3;

    /**
     * DIBL coefficient (V/V) used for the standby evaluation.
     * Calibrated so the default cell's standby leakage lands at the
     * drowsy paper's ~6x reduction; see the file comment.
     */
    double diblEta = 0.15;

    /**
     * Effective supply-rail capacitance per cell (fF): the charge
     * that must be restored on wake (cell internals plus the cell's
     * share of the virtual-rail wiring).
     */
    double railCapPerCellFf = 2.5;

    /** Cycles to restore the rail before the line is readable. */
    Cycles wakeLatency = 1;
};

/**
 * Evaluates one drowsy configuration applied to an SRAM cell:
 * standby leakage, wake-transition energy and wake latency — the
 * state-preserving counterpart of the GatedVdd figures.
 */
class DrowsyCell
{
  public:
    DrowsyCell(const Technology &tech, const SramCell &cell,
               const DrowsyCellConfig &config);

    const DrowsyCellConfig &config() const { return config_; }

    /** Standby (drowsy-mode) leakage current per cell, A. */
    double standbyLeakageCurrentPerCell() const;

    /** Standby leakage energy per cycle per cell, nJ. */
    double standbyLeakagePerCycle(double cycleNs = 1.0) const;

    /**
     * Standby leakage as a fraction of the cell's active leakage —
     * the number the energy accounting consumes (~0.16 by default,
     * i.e. a ~6x reduction).
     */
    double standbyLeakageFraction() const;

    /** Leakage savings versus active mode, as a fraction. */
    double leakageSavingsFraction() const
    {
        return 1.0 - standbyLeakageFraction();
    }

    /**
     * Energy to recharge one line's supply rail from the retention
     * voltage back to Vdd, nJ, for @p cellsPerLine cells.
     */
    double wakeEnergyPerLineNJ(unsigned cellsPerLine) const;

    /** Cycles before a woken line is readable. */
    Cycles wakeLatency() const { return config_.wakeLatency; }

  private:
    Technology tech_;
    SramCell cell_;
    DrowsyCellConfig config_;
};

} // namespace drisim::circuit

#endif // DRISIM_CIRCUIT_DROWSY_CELL_HH
