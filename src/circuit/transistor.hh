/**
 * @file
 * MOSFET current models: subthreshold leakage (with the stacking
 * effect) and alpha-power drive current.
 *
 * The stacking effect (Ye, Borkar, De [32]) is what makes gated-Vdd
 * work: two series off-transistors self-reverse-bias at the shared
 * node, cutting leakage by orders of magnitude. solveSeriesStack()
 * finds the intermediate-node voltage where the two subthreshold
 * currents balance.
 */

#ifndef DRISIM_CIRCUIT_TRANSISTOR_HH
#define DRISIM_CIRCUIT_TRANSISTOR_HH

#include "circuit/technology.hh"

namespace drisim::circuit
{

/** Transistor polarity. */
enum class Polarity { Nmos, Pmos };

/** A sized transistor at a given threshold voltage. */
struct Mosfet
{
    Polarity polarity = Polarity::Nmos;
    /** Channel width, um. */
    double widthUm = 1.0;
    /** Threshold voltage, V. */
    double vt = 0.2;
    /**
     * Short-channel device subject to DIBL. Power-gating
     * transistors are drawn long-channel (false).
     */
    bool dibl = true;
};

/**
 * Subthreshold (weak-inversion) current, amperes.
 *
 * I = i0 * W * exp((Vgs - Vt + eta Vds) / (n vT))
 *        * (1 - exp(-Vds / vT))
 *
 * where eta is the DIBL coefficient (0 for long-channel devices).
 *
 * @param tech process corner
 * @param m    the device
 * @param vgs  gate-source voltage (V); 0 for an "off" device
 * @param vds  drain-source voltage (V)
 */
double subthresholdCurrent(const Technology &tech, const Mosfet &m,
                           double vgs, double vds);

/** Off-current at Vgs = 0, Vds = Vdd — the standard Ioff figure. */
double offCurrent(const Technology &tech, const Mosfet &m);

/**
 * Saturation drive current (amperes) via the alpha-power law:
 * Ion = k * W * (Vgs - Vt)^alpha. Returns 0 if Vgs <= Vt.
 */
double onCurrent(const Technology &tech, const Mosfet &m, double vgs);

/**
 * Effective on-resistance (ohms) of the device when driven with
 * @p vgs, linearized as Vdd / Ion. Infinite (huge) if off.
 */
double onResistance(const Technology &tech, const Mosfet &m, double vgs);

/**
 * Result of a two-device series leakage stack.
 */
struct StackResult
{
    /** Voltage of the internal (virtual rail) node, V. */
    double internalNodeV = 0.0;
    /** Leakage current through the stack, A. */
    double current = 0.0;
};

/**
 * Solve the series stack: @p top conducts from Vdd down to the
 * internal node Vx, @p bottom from Vx to ground; both have their
 * gates at ground (off). Used for an SRAM cell leaking through an
 * off NMOS gated-Vdd device.
 *
 * The top device's source sits at Vx, so its Vgs = -Vx (reverse
 * bias) and Vds = Vdd - Vx; the bottom device sees Vgs = vgsBottom
 * (normally 0) and Vds = Vx. Binary search for current balance.
 */
StackResult solveSeriesStack(const Technology &tech, const Mosfet &top,
                             const Mosfet &bottom, double vgsBottom = 0.0);

} // namespace drisim::circuit

#endif // DRISIM_CIRCUIT_TRANSISTOR_HH
