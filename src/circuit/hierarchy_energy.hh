/**
 * @file
 * Per-level circuit/technology points for the multi-level DRI study.
 *
 * The paper evaluates one technology corner and one SRAM array (the
 * 64 KB L1 i-cache). Extending gated-Vdd resizing to the L2 (after
 * Bai et al., "Power-Performance Trade-Offs in Nanometer-Scale
 * Multi-Level Caches Considering Total Leakage") needs each level to
 * carry its *own* circuit point: large L2 arrays are typically built
 * from higher-Vt, denser cells at a different subarray split than
 * the latency-critical L1, and leakage figures scale with each
 * level's geometry, not the L1's.
 *
 * A LevelCircuit bundles a technology corner with a cache geometry;
 * levelFigures() reduces it to the three per-level constants the
 * energy accounting consumes (full-array leakage per cycle, dynamic
 * energy per access, resizing-tag bitline energy per access).
 */

#ifndef DRISIM_CIRCUIT_HIERARCHY_ENERGY_HH
#define DRISIM_CIRCUIT_HIERARCHY_ENERGY_HH

#include <string>
#include <vector>

#include "circuit/cache_energy.hh"
#include "circuit/technology.hh"

namespace drisim::circuit
{

/** One cache level's circuit point: its own corner and geometry. */
struct LevelCircuit
{
    std::string name = "level";
    Technology tech = Technology::scaled018();
    CacheGeometry geom{};
    /**
     * Data-cell threshold voltage for the leakage figure. The L1
     * uses the fast low-Vt cell (tech.vtLow); a leakage-conscious
     * L2 may use a higher-Vt cell (Dizabadi & Kaya-style 6T
     * low-power arrays) at the cost of read time.
     */
    double dataCellVt = 0.20;
};

/** The three constants the per-level energy accounting consumes. */
struct LevelEnergyFigures
{
    /** Full-array leakage per cycle, nJ (scales with active bytes). */
    double leakPerCycleNJ = 0.0;
    /** Dynamic energy of one access, nJ. */
    double accessEnergyNJ = 0.0;
    /** Dynamic energy of one resizing-tag bitline per access, nJ. */
    double bitlineEnergyNJ = 0.0;
};

/** Derive the energy figures for one level from its circuit point. */
LevelEnergyFigures levelFigures(const LevelCircuit &level);

/**
 * The default two-level hierarchy circuit: the paper's L1 i-cache
 * point plus a same-corner L2 point with the Table 1 L2 geometry
 * (1 MB, 4-way, 64 B, split into 1024-row subarrays).
 */
std::vector<LevelCircuit> defaultHierarchyCircuit();

} // namespace drisim::circuit

#endif // DRISIM_CIRCUIT_HIERARCHY_ENERGY_HH
