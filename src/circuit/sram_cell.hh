/**
 * @file
 * 6-T SRAM cell model: leakage paths and read timing (Figure 2 (a)).
 *
 * A cell holding a stable bit has three leaking devices:
 *  - the off pull-down NMOS of the inverter whose output is high,
 *  - the off pull-up PMOS of the inverter whose output is low,
 *  - the off access NMOS on the low side (bitline precharged high).
 * The fourth (access on the high side) sees ~0 Vds and is neglected.
 *
 * The read path discharges a precharged bitline through the access
 * transistor in series with a pull-down; read time is taken (as in
 * the paper) as the time for the bitline to fall to 75% of Vdd.
 */

#ifndef DRISIM_CIRCUIT_SRAM_CELL_HH
#define DRISIM_CIRCUIT_SRAM_CELL_HH

#include "circuit/technology.hh"
#include "circuit/transistor.hh"

namespace drisim::circuit
{

/** A 6-T SRAM cell at a given (single) threshold voltage. */
class SramCell
{
  public:
    /** Build a cell in @p tech with all six devices at @p vt volts. */
    SramCell(const Technology &tech, double vt);

    /** The cell threshold voltage (V). */
    double vt() const { return vt_; }

    const Technology &tech() const { return tech_; }

    /** Total cell leakage current in active (powered) mode, A. */
    double activeLeakageCurrent() const;

    /**
     * Active leakage energy per clock cycle, nJ
     * (Table 2 row "Active Leakage Energy").
     * @param cycleNs clock period in ns (1.0 for the 1 GHz core)
     */
    double activeLeakagePerCycle(double cycleNs = 1.0) const;

    /**
     * The cell's composite "off path" from Vdd to ground, as an
     * equivalent single device for series-stack analysis: total
     * leaking width with NMOS-equivalent scaling.
     */
    Mosfet equivalentLeakDevice() const;

    /**
     * Bitline discharge (read) time in ns through access + pull-down,
     * with optional extra series resistance (ohms) from a gating
     * device, for a column of @p rows cells.
     */
    double readTimeNs(unsigned rows, double extraSeriesOhms = 0.0) const;

    /**
     * Read time relative to a low-Vt reference cell in the same
     * technology (Table 2 row "Relative Read Time").
     */
    double relativeReadTime(double extraSeriesOhms = 0.0) const;

    /** Bitline capacitance for a @p rows-cell column, fF. */
    double bitlineCapFf(unsigned rows) const;

  private:
    Technology tech_;
    double vt_;
};

} // namespace drisim::circuit

#endif // DRISIM_CIRCUIT_SRAM_CELL_HH
