/**
 * @file
 * Array area model: SRAM subarray dimensions and the layout cost of
 * the shared gated-Vdd transistor.
 *
 * Following the paper's Mentor IC-Station methodology: the gated-Vdd
 * transistor is laid out as rows of parallel fingers running along
 * the length of a cache line, each finger as long as the cell
 * height, so only the data-array *width* grows (Section 5.1).
 */

#ifndef DRISIM_CIRCUIT_AREA_MODEL_HH
#define DRISIM_CIRCUIT_AREA_MODEL_HH

#include <cstdint>

#include "circuit/gated_vdd.hh"
#include "circuit/technology.hh"

namespace drisim::circuit
{

/** Dimensions of one SRAM line (row of cells) and its gating. */
struct LineAreaModel
{
    LineAreaModel(const Technology &tech, unsigned cellsPerLine,
                  const GatedVddConfig &gating);

    /** Cell width (um) derived from area and height. */
    double cellWidthUm() const;

    /** Ungated line area: cells only (um^2). */
    double baseLineAreaUm2() const;

    /** Total gate width needed for the line (um). */
    double totalGateWidthUm() const;

    /**
     * Number of parallel finger rows: each finger is cellHeight um
     * long, and fingers stack along the line width.
     */
    unsigned fingerRows() const;

    /** Area added by the gated-Vdd structure (um^2). */
    double gatedAreaUm2() const;

    /** Fractional area overhead (Table 2 row "Area Increase"). */
    double overheadFraction() const;

  private:
    Technology tech_;
    unsigned cellsPerLine_;
    GatedVddConfig gating_;
};

/** Whole data-array area for a cache (um^2), with/without gating. */
double dataArrayAreaUm2(const Technology &tech, std::uint64_t sizeBytes,
                        unsigned blockBytes, const GatedVddConfig &gating);

} // namespace drisim::circuit

#endif // DRISIM_CIRCUIT_AREA_MODEL_HH
