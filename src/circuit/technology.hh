/**
 * @file
 * Process-technology parameters for the circuit substrate.
 *
 * The paper's circuit study uses a 0.18 um process at Vdd = 1.0 V and
 * a 110 C operating temperature, evaluated with Hspice on CACTI-derived
 * netlists. We replace that flow with an analytical model:
 *
 *  - subthreshold (off) current:
 *        Ioff = i0 * W * exp(-Vt / (n * vT)) * (1 - exp(-Vds / vT))
 *  - drive (on) current, alpha-power law:
 *        Ion  = k * W * (Vgs - Vt)^alpha
 *
 * The constants below are calibrated so that the model reproduces the
 * paper's published Table 2 anchor points (see sram_cell.cc and
 * gated_vdd.cc); the functional forms then extrapolate to other
 * threshold voltages, widths and temperatures.
 */

#ifndef DRISIM_CIRCUIT_TECHNOLOGY_HH
#define DRISIM_CIRCUIT_TECHNOLOGY_HH

namespace drisim::circuit
{

/** Boltzmann constant over electron charge, volts per kelvin. */
inline constexpr double kBoltzmannOverQ = 8.617333e-5;

/**
 * A CMOS process corner. All widths are in micrometers, voltages in
 * volts, currents in amperes, temperatures in kelvin.
 */
struct Technology
{
    /** Drawn feature size (um); 0.18 for the paper's process. */
    double featureUm = 0.18;

    /** Supply voltage (V); the paper scales aggressively to 1.0 V. */
    double vdd = 1.0;

    /** Operating temperature (K); Table 2 is measured at 110 C. */
    double temperatureK = 383.15;

    /** Subthreshold slope ideality factor n (dimensionless). */
    double subthresholdN = 1.707;

    /**
     * NMOS subthreshold leakage scale i0 (A/um) at Vgs = 0,
     * before the exp((-Vt + eta Vds)/(n vT)) factor. Calibrated so
     * a low-Vt 6-T cell leaks 1.74 uA (= 1740e-9 nJ per 1 ns cycle
     * at 1.0 V), Table 2.
     */
    double i0NmosPerUm = 58.4e-6;

    /**
     * Drain-induced barrier lowering coefficient eta (V/V) for
     * short-channel devices. DIBL deepens the stacking effect: the
     * stacked device's reduced Vds raises its effective threshold.
     *
     * The default corner sets eta = 0 because the Table 2
     * calibration points are all taken at Vds = Vdd, where DIBL is
     * indistinguishable from the i0 prefactor; enabling a nonzero
     * eta (e.g. 0.1) exposes the additional low-Vds stack benefit
     * for device-level studies but moves the standby figure off
     * the paper's published 53e-9 nJ anchor. Power-gating
     * transistors are drawn long-channel and are modeled DIBL-free
     * regardless (Mosfet::dibl = false).
     */
    double diblEta = 0.0;

    /** PMOS off-current relative to NMOS at equal width. */
    double pmosLeakRatio = 0.5;

    /** PMOS drive relative to NMOS at equal width (mobility ratio). */
    double pmosDriveRatio = 0.45;

    /**
     * Alpha-power law exponent. The effective value 2.772 is
     * calibrated from Table 2's relative read times:
     * (0.8/0.6)^alpha = 2.22.
     */
    double alphaPower = 2.772;

    /** NMOS drive scale k (A/um at (Vgs-Vt) = 1 V). Used for
     *  absolute read-time estimates only; ratios cancel it. */
    double kDrivePerUm = 300e-6;

    /** Low (performance) threshold voltage (V). */
    double vtLow = 0.20;

    /** High (leakage-control) threshold voltage (V). */
    double vtHigh = 0.40;

    /** 6-T cell transistor widths (um): pull-down NMOS. */
    double wPulldown = 0.54;
    /** 6-T cell transistor widths (um): access NMOS. */
    double wAccess = 0.36;
    /** 6-T cell transistor widths (um): pull-up PMOS. */
    double wPullup = 0.27;

    /** SRAM cell layout area (um^2), used by the area model. */
    double cellAreaUm2 = 8.6;

    /** Bitline capacitance per attached row (fF). */
    double bitlineCapPerRowFf = 1.0;

    /** Bitline wire capacitance per um of column height (fF/um). */
    double bitlineWireCapPerUmFf = 0.08;

    /** SRAM cell height (um) — column pitch for wire-length math. */
    double cellHeightUm = 2.0;

    /** Thermal voltage vT = kT/q at the operating temperature (V). */
    double thermalVoltage() const
    {
        return kBoltzmannOverQ * temperatureK;
    }

    /** The paper's 0.18 um / 1.0 V / 110 C corner. */
    static Technology scaled018();

    /**
     * The same corner at a different temperature (K); leakage rises
     * steeply with temperature, drive current mildly degrades.
     */
    Technology atTemperature(double kelvin) const;
};

} // namespace drisim::circuit

#endif // DRISIM_CIRCUIT_TECHNOLOGY_HH
