/**
 * @file
 * Drowsy-cell evaluation: state-preserving standby leakage and the
 * wake-transition cost of restoring the supply rail.
 */

#include "circuit/drowsy_cell.hh"

#include <cmath>

#include "util/logging.hh"

namespace drisim::circuit
{

DrowsyCell::DrowsyCell(const Technology &tech, const SramCell &cell,
                       const DrowsyCellConfig &config)
    : tech_(tech), cell_(cell), config_(config)
{
    drisim_assert(config.standbyVddV > 0.0 &&
                  config.standbyVddV < tech.vdd,
                  "drowsy standby rail must sit in (0, Vdd)");
}

double
DrowsyCell::standbyLeakageFraction() const
{
    // The cell's leakage paths keep their Vgs = 0 bias in drowsy
    // mode; only Vds drops from Vdd to the retention rail. Two
    // factors of the subthreshold model change with it:
    //
    //   exp(eta * (Vs - Vdd) / (n vT))   — DIBL: the lower drain
    //                                      raises the effective Vt
    //   (1 - e^{-Vs/vT}) / (1 - e^{-Vdd/vT}) — drain saturation
    //
    // evaluated with the config's own calibrated eta (the default
    // technology corner pins eta = 0 at its Vds = Vdd anchors; see
    // technology.hh).
    const double vt = tech_.thermalVoltage();
    const double n_vt = tech_.subthresholdN * vt;
    const double vs = config_.standbyVddV;
    const double vdd = tech_.vdd;
    const double dibl = std::exp(config_.diblEta * (vs - vdd) / n_vt);
    const double drain = (1.0 - std::exp(-vs / vt)) /
                         (1.0 - std::exp(-vdd / vt));
    return dibl * drain;
}

double
DrowsyCell::standbyLeakageCurrentPerCell() const
{
    return cell_.activeLeakageCurrent() * standbyLeakageFraction();
}

double
DrowsyCell::standbyLeakagePerCycle(double cycleNs) const
{
    // Standby power is drawn from the retention rail, not Vdd.
    return standbyLeakageCurrentPerCell() * config_.standbyVddV *
           cycleNs;
}

double
DrowsyCell::wakeEnergyPerLineNJ(unsigned cellsPerLine) const
{
    // Recharge the virtual rail of every cell in the line through
    // the full swing: E = C * Vdd * (Vdd - Vs).
    // fF * V^2 = 1e-15 J = 1e-6 nJ.
    return static_cast<double>(cellsPerLine) *
           config_.railCapPerCellFf * tech_.vdd *
           (tech_.vdd - config_.standbyVddV) * 1e-6;
}

} // namespace drisim::circuit
