/**
 * @file
 * Per-level circuit points reduced to the constants the multi-level
 * energy accounting consumes.
 */

#include "circuit/hierarchy_energy.hh"

namespace drisim::circuit
{

LevelEnergyFigures
levelFigures(const LevelCircuit &level)
{
    const CacheEnergyModel model(level.tech, level.geom);
    LevelEnergyFigures f;
    f.leakPerCycleNJ =
        model.leakagePerCycleNJ(level.geom.sizeBytes,
                                level.dataCellVt);
    f.accessEnergyNJ = model.accessEnergyNJ();
    f.bitlineEnergyNJ = model.bitlineEnergyNJ();
    return f;
}

std::vector<LevelCircuit>
defaultHierarchyCircuit()
{
    LevelCircuit l1;
    l1.name = "l1i";
    l1.geom = l1Geometry();
    l1.dataCellVt = l1.tech.vtLow;

    LevelCircuit l2;
    l2.name = "l2";
    l2.geom = l2Geometry();
    l2.dataCellVt = l2.tech.vtLow;

    return {l1, l2};
}

} // namespace drisim::circuit
