/**
 * @file
 * CACTI-lite: cache-level energy figures derived from the cell model.
 *
 * Section 5.2 of the paper reduces the circuit study to three
 * constants, all of which this model derives:
 *
 *  - conventional 64 KB i-cache leakage = 0.91 nJ per 1 ns cycle
 *    (= 64Ki bytes * 8 cells * low-Vt active cell leakage);
 *  - dynamic energy of one resizing-tag bitline per L1 access
 *    = 0.0022 nJ (full-height bitline pair swing);
 *  - dynamic energy per L2 access = 3.6 nJ (from Kamble & Ghose's
 *    analytical model [11]; we calibrate the routing term to it).
 */

#ifndef DRISIM_CIRCUIT_CACHE_ENERGY_HH
#define DRISIM_CIRCUIT_CACHE_ENERGY_HH

#include <cstdint>

#include "circuit/sram_cell.hh"
#include "circuit/technology.hh"

namespace drisim::circuit
{

/** Physical organization of one cache for energy purposes. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 64 * 1024;
    unsigned assoc = 1;
    unsigned blockBytes = 32;
    /** Max rows per subarray before CACTI-style splitting. */
    unsigned maxRowsPerSubarray = 4096;

    std::uint64_t numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(blockBytes) *
                            assoc);
    }

    /** Rows in one physical column (after subarray splitting). */
    unsigned rowsPerSubarray() const;
};

/**
 * Per-cache energy model built on the 6-T cell physics.
 */
class CacheEnergyModel
{
  public:
    CacheEnergyModel(const Technology &tech, const CacheGeometry &geom);

    const CacheGeometry &geometry() const { return geom_; }

    /**
     * Leakage energy per cycle for @p activeBytes of powered data
     * array at cell threshold @p vt (nJ / cycle). The paper's
     * 0.91 nJ figure is leakagePerCycleNJ(64 KiB, 0.2 V).
     */
    double leakagePerCycleNJ(std::uint64_t activeBytes, double vt) const;

    /** Leakage per cycle for the full data array at low Vt. */
    double fullLeakagePerCycleNJ() const;

    /**
     * Dynamic energy of driving ONE bitline pair for one access
     * (nJ). This is the unit cost of a resizing tag bit
     * (paper: 0.0022 nJ for the 64 KB L1 geometry).
     */
    double bitlineEnergyNJ() const;

    /**
     * Total dynamic energy of one read access (nJ): decode,
     * wordline, data + tag bitlines for all ways, sense amps and
     * output drive, plus array routing. Calibrated so the paper's
     * L2 geometry (1 MB, 4-way, 64 B) gives 3.6 nJ.
     */
    double accessEnergyNJ() const;

  private:
    Technology tech_;
    CacheGeometry geom_;
    SramCell lowVtCell_;
};

/** The paper's L1 i-cache geometry (64 KB direct-mapped, 32 B). */
CacheGeometry l1Geometry();

/** The paper's L2 geometry (1 MB 4-way unified, 64 B blocks). */
CacheGeometry l2Geometry();

} // namespace drisim::circuit

#endif // DRISIM_CIRCUIT_CACHE_ENERGY_HH
