/**
 * @file
 * 6-T SRAM cell leakage paths and read-timing estimate.
 */

#include "circuit/sram_cell.hh"

#include <cmath>

namespace drisim::circuit
{

namespace
{

/** Reference column height used for relative read-time figures. */
constexpr unsigned kReferenceRows = 256;

} // namespace

SramCell::SramCell(const Technology &tech, double vt)
    : tech_(tech), vt_(vt)
{
}

double
SramCell::activeLeakageCurrent() const
{
    const Mosfet pulldown{Polarity::Nmos, tech_.wPulldown, vt_};
    const Mosfet access{Polarity::Nmos, tech_.wAccess, vt_};
    const Mosfet pullup{Polarity::Pmos, tech_.wPullup, vt_};
    return offCurrent(tech_, pulldown) + offCurrent(tech_, access) +
           offCurrent(tech_, pullup);
}

double
SramCell::activeLeakagePerCycle(double cycleNs) const
{
    // I (A) * Vdd (V) * t (ns) gives energy in nJ directly:
    // 1 A * 1 V * 1 ns = 1e-9 J = 1 nJ.
    return activeLeakageCurrent() * tech_.vdd * cycleNs;
}

Mosfet
SramCell::equivalentLeakDevice() const
{
    // Fold the PMOS path into NMOS-equivalent width so the stack
    // solver can treat the cell as one device.
    const double eq_width = tech_.wPulldown + tech_.wAccess +
                            tech_.wPullup * tech_.pmosLeakRatio;
    return Mosfet{Polarity::Nmos, eq_width, vt_};
}

double
SramCell::bitlineCapFf(unsigned rows) const
{
    const double drain_cap = tech_.bitlineCapPerRowFf * rows;
    const double wire_cap =
        tech_.bitlineWireCapPerUmFf * tech_.cellHeightUm * rows;
    return drain_cap + wire_cap;
}

double
SramCell::readTimeNs(unsigned rows, double extraSeriesOhms) const
{
    // Discharge path: access transistor in series with pull-down.
    const Mosfet access{Polarity::Nmos, tech_.wAccess, vt_};
    const Mosfet pulldown{Polarity::Nmos, tech_.wPulldown, vt_};
    const double r_path = onResistance(tech_, access, tech_.vdd) +
                          onResistance(tech_, pulldown, tech_.vdd) +
                          extraSeriesOhms;
    const double c_bl_f = bitlineCapFf(rows) * 1e-15;
    // Fall from Vdd to 75% Vdd: t = R C ln(1/0.75).
    const double t_s = r_path * c_bl_f * std::log(1.0 / 0.75);
    return t_s * 1e9;
}

double
SramCell::relativeReadTime(double extraSeriesOhms) const
{
    const SramCell reference(tech_, tech_.vtLow);
    return readTimeNs(kReferenceRows, extraSeriesOhms) /
           reference.readTimeNs(kReferenceRows, 0.0);
}

} // namespace drisim::circuit
