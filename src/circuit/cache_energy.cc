/**
 * @file
 * CACTI-lite cache energy: derives the Section 5.2 constants.
 */

#include "circuit/cache_energy.hh"

#include <algorithm>
#include <cmath>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace drisim::circuit
{

namespace
{

// CACTI-lite component constants (0.18 um), chosen so the composite
// model hits the paper's published figures (see EXPERIMENTS.md):
//   - L2 (1 MB 4-way 64 B) access = ~3.6 nJ
//   - L1 resizing-tag bitline       = ~0.0022 nJ
/** Fraction of Vdd a read bitline swings before the sense amp fires. */
constexpr double kReadSwing = 0.3;
/** Sense-amp energy per sensed column, pJ. */
constexpr double kSenseAmpPj = 0.1;
/** Wordline capacitance per attached cell, fF. */
constexpr double kWordlineCapPerCellFf = 0.5;
/** H-tree routing capacitance per mm of wire, pF. */
constexpr double kRouteCapPerMmPf = 0.28;
/** Address/control wires routed alongside the data. */
constexpr unsigned kAddrControlWires = 32;

} // namespace

unsigned
CacheGeometry::rowsPerSubarray() const
{
    const std::uint64_t sets = numSets();
    const std::uint64_t rows =
        std::min<std::uint64_t>(sets, maxRowsPerSubarray);
    return static_cast<unsigned>(rows);
}

CacheEnergyModel::CacheEnergyModel(const Technology &tech,
                                   const CacheGeometry &geom)
    : tech_(tech), geom_(geom), lowVtCell_(tech, tech.vtLow)
{
    drisim_assert(isPowerOf2(geom.sizeBytes) &&
                  isPowerOf2(geom.blockBytes),
                  "cache geometry must be power-of-two sized");
}

double
CacheEnergyModel::leakagePerCycleNJ(std::uint64_t activeBytes,
                                    double vt) const
{
    const SramCell cell(tech_, vt);
    const double cells = static_cast<double>(activeBytes) * 8.0;
    return cells * cell.activeLeakagePerCycle(1.0);
}

double
CacheEnergyModel::fullLeakagePerCycleNJ() const
{
    return leakagePerCycleNJ(geom_.sizeBytes, tech_.vtLow);
}

double
CacheEnergyModel::bitlineEnergyNJ() const
{
    // One bitline pair, precharged to Vdd, one side discharged by
    // the access: E = C_bl * Vdd * Vswing. Tag bitlines swing fully.
    const double c_bl_f =
        lowVtCell_.bitlineCapFf(geom_.rowsPerSubarray()) * 1e-15;
    const double joules = c_bl_f * tech_.vdd * tech_.vdd;
    return joules * 1e9;
}

double
CacheEnergyModel::accessEnergyNJ() const
{
    const unsigned block_bits = geom_.blockBytes * 8;
    const unsigned set_index_bits =
        exactLog2(geom_.sizeBytes / geom_.assoc);
    const unsigned tag_bits = 32 - set_index_bits +
                              exactLog2(geom_.blockBytes);
    // All ways read in parallel (data + tag), CACTI style.
    const double sensed_columns =
        static_cast<double>(geom_.assoc) * (block_bits + tag_bits);

    const double c_bl_f =
        lowVtCell_.bitlineCapFf(geom_.rowsPerSubarray()) * 1e-15;
    const double e_bitlines_j =
        sensed_columns * c_bl_f * tech_.vdd * (tech_.vdd * kReadSwing);

    const double e_sense_j = sensed_columns * kSenseAmpPj * 1e-12;

    const double e_wordline_j = sensed_columns *
                                kWordlineCapPerCellFf * 1e-15 *
                                tech_.vdd * tech_.vdd;

    // H-tree routing: block data plus address/control, across twice
    // the array's linear dimension.
    const double cells = static_cast<double>(geom_.sizeBytes) * 8.0;
    const double area_mm2 = cells * tech_.cellAreaUm2 * 1e-6;
    const double route_mm = 2.0 * std::sqrt(area_mm2);
    const double wires = block_bits + kAddrControlWires;
    const double e_route_j = wires * kRouteCapPerMmPf * 1e-12 *
                             route_mm * tech_.vdd * tech_.vdd;

    return (e_bitlines_j + e_sense_j + e_wordline_j + e_route_j) * 1e9;
}

CacheGeometry
l1Geometry()
{
    CacheGeometry g;
    g.sizeBytes = 64 * 1024;
    g.assoc = 1;
    g.blockBytes = 32;
    g.maxRowsPerSubarray = 4096; // single full-height column
    return g;
}

CacheGeometry
l2Geometry()
{
    CacheGeometry g;
    g.sizeBytes = 1024 * 1024;
    g.assoc = 4;
    g.blockBytes = 64;
    g.maxRowsPerSubarray = 1024;
    return g;
}

} // namespace drisim::circuit
