/**
 * @file
 * Gated-Vdd variant evaluation: standby leakage, read-time and
 * area penalties per gating scheme.
 */

#include "circuit/gated_vdd.hh"

#include "util/logging.hh"

namespace drisim::circuit
{

GatedVdd::GatedVdd(const Technology &tech, const SramCell &cell,
                   const GatedVddConfig &config)
    : tech_(tech), cell_(cell), config_(config)
{
    drisim_assert(config.widthPerCellUm > 0.0 ||
                  config.kind == GatingKind::None,
                  "gated-Vdd width must be positive");
}

Mosfet
GatedVdd::gateDevice() const
{
    Mosfet m;
    m.widthUm = config_.widthPerCellUm;
    // Power gates are drawn long-channel for leakage control:
    // negligible DIBL.
    m.dibl = false;
    switch (config_.kind) {
      case GatingKind::None:
        m.widthUm = 0.0;
        m.vt = tech_.vtLow;
        break;
      case GatingKind::NmosDualVt:
        m.polarity = Polarity::Nmos;
        m.vt = tech_.vtHigh;
        break;
      case GatingKind::NmosLowVt:
        m.polarity = Polarity::Nmos;
        m.vt = cell_.vt();
        break;
      case GatingKind::PmosDualVt:
        m.polarity = Polarity::Pmos;
        m.vt = tech_.vtHigh;
        break;
    }
    return m;
}

double
GatedVdd::standbyLeakageCurrentPerCell() const
{
    if (config_.kind == GatingKind::None)
        return cell_.activeLeakageCurrent();

    const Mosfet gate = gateDevice();

    if (config_.kind == GatingKind::PmosDualVt) {
        // The PMOS gate blocks only the paths sourced from Vdd
        // (the two inverter legs); bitline-to-ground leakage through
        // the off access transistor is untouched.
        const double inverter_eq_width =
            tech_.wPulldown + tech_.wPullup * tech_.pmosLeakRatio;
        const Mosfet inverters{Polarity::Nmos, inverter_eq_width,
                               cell_.vt()};
        // Stack: gated PMOS (from Vdd) above the cell's inverter
        // leakage paths. The topology is symmetric to the NMOS case.
        const StackResult stack =
            solveSeriesStack(tech_, gate, inverters);
        const Mosfet access{Polarity::Nmos, tech_.wAccess, cell_.vt()};
        return stack.current + offCurrent(tech_, access);
    }

    // NMOS gating: every cell leakage path terminates at ground
    // through the gate device, so the whole cell stacks on it.
    const StackResult stack =
        solveSeriesStack(tech_, cell_.equivalentLeakDevice(), gate);
    return stack.current;
}

double
GatedVdd::standbyLeakagePerCycle(double cycleNs) const
{
    return standbyLeakageCurrentPerCell() * tech_.vdd * cycleNs;
}

double
GatedVdd::seriesReadResistance() const
{
    switch (config_.kind) {
      case GatingKind::None:
      case GatingKind::PmosDualVt:
        return 0.0;
      default:
        break;
    }
    const Mosfet gate = gateDevice();
    const double gate_drive_v = tech_.vdd + config_.chargePumpBoostV;
    return onResistance(tech_, gate, gate_drive_v);
}

double
GatedVdd::relativeReadTime() const
{
    return cell_.relativeReadTime(seriesReadResistance());
}

double
GatedVdd::readTimeFactor() const
{
    return cell_.relativeReadTime(seriesReadResistance()) /
           cell_.relativeReadTime(0.0);
}

double
GatedVdd::areaOverheadFraction() const
{
    if (config_.kind == GatingKind::None)
        return 0.0;
    // Rows of parallel transistor fingers along the cache line; each
    // um of gate width consumes layoutPitchUm^2... i.e. pitch * width
    // of silicon, normalized by one cell's area.
    double width = config_.widthPerCellUm;
    if (config_.kind == GatingKind::PmosDualVt) {
        // PMOS needs extra width for equal drive; area follows.
        width /= tech_.pmosDriveRatio;
    }
    return width * config_.layoutPitchUm / tech_.cellAreaUm2;
}

double
GatedVdd::leakageSavingsFraction() const
{
    const double active = cell_.activeLeakageCurrent();
    if (active <= 0.0)
        return 0.0;
    return 1.0 - standbyLeakageCurrentPerCell() / active;
}

} // namespace drisim::circuit
