/**
 * @file
 * SRAM subarray dimensions and gated-Vdd transistor layout cost.
 */

#include "circuit/area_model.hh"

#include <cmath>

#include "util/logging.hh"

namespace drisim::circuit
{

LineAreaModel::LineAreaModel(const Technology &tech,
                             unsigned cellsPerLine,
                             const GatedVddConfig &gating)
    : tech_(tech), cellsPerLine_(cellsPerLine), gating_(gating)
{
    drisim_assert(cellsPerLine > 0, "a line needs at least one cell");
}

double
LineAreaModel::cellWidthUm() const
{
    return tech_.cellAreaUm2 / tech_.cellHeightUm;
}

double
LineAreaModel::baseLineAreaUm2() const
{
    return tech_.cellAreaUm2 * cellsPerLine_;
}

double
LineAreaModel::totalGateWidthUm() const
{
    if (gating_.kind == GatingKind::None)
        return 0.0;
    double w = gating_.widthPerCellUm * cellsPerLine_;
    if (gating_.kind == GatingKind::PmosDualVt)
        w /= tech_.pmosDriveRatio;
    return w;
}

unsigned
LineAreaModel::fingerRows() const
{
    const double total = totalGateWidthUm();
    if (total <= 0.0)
        return 0;
    // Each finger is one cell-height long; a full row of fingers
    // along the line provides lineLength / fingerPitch fingers, i.e.
    // lineLength worth of width per row (fingers are cellHeight um
    // of gate width each, packed at cellHeight pitch).
    const double width_per_row =
        cellWidthUm() * cellsPerLine_ / tech_.cellHeightUm *
        tech_.cellHeightUm; // = line length um of gate width per row
    return static_cast<unsigned>(std::ceil(total / width_per_row));
}

double
LineAreaModel::gatedAreaUm2() const
{
    if (gating_.kind == GatingKind::None)
        return 0.0;
    // Each um of gate width occupies layoutPitchUm of silicon along
    // the widened edge of the line.
    return gating_.layoutPitchUm * totalGateWidthUm();
}

double
LineAreaModel::overheadFraction() const
{
    return gatedAreaUm2() / baseLineAreaUm2();
}

double
dataArrayAreaUm2(const Technology &tech, std::uint64_t sizeBytes,
                 unsigned blockBytes, const GatedVddConfig &gating)
{
    const std::uint64_t lines = sizeBytes / blockBytes;
    const LineAreaModel line(tech, blockBytes * 8, gating);
    return static_cast<double>(lines) *
           (line.baseLineAreaUm2() + line.gatedAreaUm2());
}

} // namespace drisim::circuit
