/**
 * @file
 * Gated-Vdd supply gating for SRAM (Powell et al., ISLPED 2000; the
 * circuit half of the paper, Section 3 and Figure 2 (b)).
 *
 * An extra transistor sits in the leakage path between the cell and
 * one supply rail. Off, it stacks with the cell's own off devices
 * (stacking effect) and collapses standby leakage; on, it adds a
 * small series resistance to the read path.
 *
 * Variants modeled (paper Section 5.1 and [19]):
 *  - NMOS between virtual ground and Gnd, dual-Vt (high-Vt gate
 *    device, low-Vt cell) with a charge pump boosting the gate in
 *    active mode — the paper's preferred configuration;
 *  - NMOS with a single (low) Vt — stacking effect only;
 *  - PMOS between Vdd and the cell — does not intercept the
 *    bitline-to-ground leakage through the access transistors, so it
 *    saves less.
 */

#ifndef DRISIM_CIRCUIT_GATED_VDD_HH
#define DRISIM_CIRCUIT_GATED_VDD_HH

#include "circuit/sram_cell.hh"
#include "circuit/technology.hh"
#include "circuit/transistor.hh"

namespace drisim::circuit
{

/** Which gating transistor (if any) is inserted. */
enum class GatingKind
{
    None,        ///< conventional cell, no gating
    NmosDualVt,  ///< high-Vt NMOS to Gnd + charge pump (preferred)
    NmosLowVt,   ///< low-Vt NMOS to Gnd (stacking effect only)
    PmosDualVt,  ///< high-Vt PMOS from Vdd
};

/** Sizing and drive options for the gating device. */
struct GatedVddConfig
{
    GatingKind kind = GatingKind::NmosDualVt;

    /**
     * Gating transistor width amortized per cell (um). The physical
     * device is one wide transistor (rows of parallel fingers)
     * shared by all cells of a cache line; per-cell width is
     * total width / cells-per-line.
     */
    double widthPerCellUm = 1.1;

    /**
     * Charge-pump gate boost above Vdd in active mode (V);
     * 0 disables the pump. The paper's preferred scheme uses one.
     */
    double chargePumpBoostV = 0.5;

    /** Layout pitch consumed per um of gate width (um); area model. */
    double layoutPitchUm = 0.4;
};

/**
 * Evaluates one gated-Vdd configuration applied to a given SRAM
 * cell: standby leakage, read-time impact, and area overhead —
 * the three axes of Table 2.
 */
class GatedVdd
{
  public:
    GatedVdd(const Technology &tech, const SramCell &cell,
             const GatedVddConfig &config);

    const GatedVddConfig &config() const { return config_; }

    /** The gating device as sized by the configuration. */
    Mosfet gateDevice() const;

    /** Standby (gated-off) leakage current per cell, A. */
    double standbyLeakageCurrentPerCell() const;

    /** Standby leakage energy per cycle per cell, nJ (Table 2). */
    double standbyLeakagePerCycle(double cycleNs = 1.0) const;

    /**
     * Series resistance the (on) gating device adds to the read
     * path, amortized per cell, ohms. Zero for PMOS gating (the
     * read discharge path does not traverse it) and for None.
     */
    double seriesReadResistance() const;

    /** Read time relative to an ungated low-Vt cell (Table 2). */
    double relativeReadTime() const;

    /** Read-time multiplier versus the same cell without gating. */
    double readTimeFactor() const;

    /** Array area overhead as a fraction (Table 2: ~0.05). */
    double areaOverheadFraction() const;

    /**
     * Standby leakage savings versus the cell's active leakage,
     * as a fraction (Table 2: 0.97).
     */
    double leakageSavingsFraction() const;

  private:
    Technology tech_;
    SramCell cell_;
    GatedVddConfig config_;
};

} // namespace drisim::circuit

#endif // DRISIM_CIRCUIT_GATED_VDD_HH
