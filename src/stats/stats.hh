/**
 * @file
 * A compact SimpleScalar/gem5-style statistics package.
 *
 * Stats self-register with a StatGroup; groups form a tree rooted at
 * a simulation component, and the whole tree can be dumped as
 * name = value lines. Every simulator module exposes its counters
 * through this package so tests and the bench harness read one
 * uniform interface.
 */

#ifndef DRISIM_STATS_STATS_HH
#define DRISIM_STATS_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace drisim::sim
{
class CheckpointWriter;
class CheckpointReader;
} // namespace drisim::sim

namespace drisim::stats
{

class StatGroup;

/** Base class for all statistics: named, described, resettable. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Reset to the zero state. */
    virtual void reset() = 0;

    /** Print "name value # desc" lines, prefixed with @p prefix. */
    virtual void print(std::ostream &os,
                       const std::string &prefix) const = 0;

    /** Serialize the current value (sim/checkpoint.hh). */
    virtual void snapshotTo(sim::CheckpointWriter &w) const = 0;
    virtual void restoreFrom(sim::CheckpointReader &r) = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A monotonically growing (or adjustable) 64-bit event counter. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t v) { value_ += v; return *this; }
    void set(std::uint64_t v) { value_ = v; }

    std::uint64_t value() const { return value_; }

    void reset() override { value_ = 0; }
    void print(std::ostream &os,
               const std::string &prefix) const override;
    void snapshotTo(sim::CheckpointWriter &w) const override;
    void restoreFrom(sim::CheckpointReader &r) override;

  private:
    std::uint64_t value_ = 0;
};

/** A running mean of double-valued samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    /** Add one sample. */
    void sample(double v);

    /** Add @p weight copies of sample value @p v. */
    void sample(double v, std::uint64_t weight);

    double mean() const;
    std::uint64_t samples() const { return count_; }

    void reset() override;
    void print(std::ostream &os,
               const std::string &prefix) const override;
    void snapshotTo(sim::CheckpointWriter &w) const override;
    void restoreFrom(sim::CheckpointReader &r) override;

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * A fixed-bucket histogram over [min, max) with uniform bucket width,
 * plus underflow/overflow buckets.
 */
class Distribution : public StatBase
{
  public:
    Distribution(StatGroup *parent, std::string name, std::string desc,
                 double min, double max, unsigned buckets);

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t bucketCount(unsigned i) const { return buckets_.at(i); }
    std::uint64_t underflows() const { return underflow_; }
    std::uint64_t overflows() const { return overflow_; }
    std::uint64_t samples() const { return samples_; }
    double mean() const;

    void reset() override;
    void print(std::ostream &os,
               const std::string &prefix) const override;
    void snapshotTo(sim::CheckpointWriter &w) const override;
    void restoreFrom(sim::CheckpointReader &r) override;

  private:
    double min_;
    double max_;
    double bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
};

/**
 * A named collection of statistics and child groups. Components
 * (caches, cores) own a StatGroup and declare members against it.
 */
class StatGroup
{
  public:
    /** Root group (no parent). */
    explicit StatGroup(std::string name);

    /** Child group; registers with @p parent. */
    StatGroup(StatGroup *parent, std::string name);

    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_; }

    /** Reset this group's stats and all descendants. */
    void resetAll();

    /** Dump "prefix.name value # desc" for the whole subtree. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Find a directly-owned stat by name (nullptr if absent). */
    const StatBase *find(const std::string &name) const;

    /**
     * Serialize every stat in this subtree, in registration order,
     * inside a section named after the group. Restoring requires an
     * identically-shaped tree (same component construction order) —
     * any drift trips a CheckpointError.
     */
    void snapshotTo(sim::CheckpointWriter &w) const;
    void restoreFrom(sim::CheckpointReader &r);

  private:
    friend class StatBase;
    void addStat(StatBase *stat);
    void addChild(StatGroup *child);
    void removeChild(StatGroup *child);

    std::string name_;
    StatGroup *parent_ = nullptr;
    std::vector<StatBase *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace drisim::stats

#endif // DRISIM_STATS_STATS_HH
