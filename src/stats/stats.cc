/**
 * @file
 * Self-registering statistics tree and name = value dumping.
 */

#include "stats/stats.hh"

#include <algorithm>
#include <cassert>
#include <iomanip>

#include "util/logging.hh"

namespace drisim::stats
{

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    drisim_assert(parent != nullptr, "stat '%s' needs a parent group",
                  name_.c_str());
    parent->addStat(this);
}

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << value_ << " # " << desc() << "\n";
}

void
Average::sample(double v)
{
    sum_ += v;
    ++count_;
}

void
Average::sample(double v, std::uint64_t weight)
{
    sum_ += v * static_cast<double>(weight);
    count_ += weight;
}

double
Average::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void
Average::reset()
{
    sum_ = 0.0;
    count_ = 0;
}

void
Average::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << mean() << " # " << desc() << "\n";
}

Distribution::Distribution(StatGroup *parent, std::string name,
                           std::string desc, double min, double max,
                           unsigned buckets)
    : StatBase(parent, std::move(name), std::move(desc)),
      min_(min), max_(max),
      bucketWidth_((max - min) / buckets),
      buckets_(buckets, 0)
{
    drisim_assert(max > min && buckets > 0,
                  "distribution needs max > min and buckets > 0");
}

void
Distribution::sample(double v, std::uint64_t count)
{
    samples_ += count;
    sum_ += v * static_cast<double>(count);
    if (v < min_) {
        underflow_ += count;
    } else if (v >= max_) {
        overflow_ += count;
    } else {
        auto idx = static_cast<size_t>((v - min_) / bucketWidth_);
        idx = std::min(idx, buckets_.size() - 1);
        buckets_[idx] += count;
    }
}

double
Distribution::mean() const
{
    return samples_ == 0 ? 0.0 : sum_ / static_cast<double>(samples_);
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = samples_ = 0;
    sum_ = 0.0;
}

void
Distribution::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::samples " << samples_ << " # "
       << desc() << "\n";
    os << prefix << name() << "::mean " << mean() << "\n";
    os << prefix << name() << "::underflows " << underflow_ << "\n";
    for (size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        double lo = min_ + bucketWidth_ * static_cast<double>(i);
        os << prefix << name() << "::[" << lo << ","
           << lo + bucketWidth_ << ") " << buckets_[i] << "\n";
    }
    os << prefix << name() << "::overflows " << overflow_ << "\n";
}

StatGroup::StatGroup(std::string name) : name_(std::move(name)) {}

StatGroup::StatGroup(StatGroup *parent, std::string name)
    : name_(std::move(name)), parent_(parent)
{
    drisim_assert(parent != nullptr, "child group '%s' needs a parent",
                  name_.c_str());
    parent->addChild(this);
}

StatGroup::~StatGroup()
{
    if (parent_)
        parent_->removeChild(this);
}

void
StatGroup::addStat(StatBase *stat)
{
    stats_.push_back(stat);
}

void
StatGroup::addChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::removeChild(StatGroup *child)
{
    children_.erase(std::remove(children_.begin(), children_.end(), child),
                    children_.end());
}

void
StatGroup::resetAll()
{
    for (auto *s : stats_)
        s->reset();
    for (auto *c : children_)
        c->resetAll();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string full =
        prefix.empty() ? name_ + "." : prefix + name_ + ".";
    for (const auto *s : stats_)
        s->print(os, full);
    for (const auto *c : children_)
        c->dump(os, full);
}

const StatBase *
StatGroup::find(const std::string &name) const
{
    for (const auto *s : stats_) {
        if (s->name() == name)
            return s;
    }
    return nullptr;
}

} // namespace drisim::stats
