/**
 * @file
 * Paired-run comparison: normalized energy-delay, slowdown, average
 * size — the quantities Figures 3-6 plot — plus the multi-level
 * extension: leakage/dynamic energy split by hierarchy level with a
 * hierarchy-total figure of merit (after Bai et al., whose point is
 * that the L2 dominates total leakage at deep-submicron nodes).
 */

#ifndef DRISIM_ENERGY_ACCOUNTING_HH
#define DRISIM_ENERGY_ACCOUNTING_HH

#include <string>
#include <utility>
#include <vector>

#include "circuit/drowsy_cell.hh"
#include "circuit/hierarchy_energy.hh"
#include "energy/energy_model.hh"

namespace drisim
{

/** Everything Figure 3 reports for one benchmark/config pair. */
struct ComparisonResult
{
    EnergyBreakdown dri;
    EnergyBreakdown conventional;
    RunMeasurement driRun;
    RunMeasurement convRun;

    /** DRI energy-delay / conventional energy-delay. */
    double relativeEnergyDelay() const;

    /** Leakage-only component of the relative energy-delay bar. */
    double relativeEdLeakage() const;

    /** Extra (L1+L2) dynamic component of the bar. */
    double relativeEdDynamic() const;

    /** Execution-time increase, percent (positive = slower). */
    double slowdownPercent() const;

    /** Average powered size as a fraction of the base size. */
    double averageSizeFraction() const
    {
        return driRun.avgActiveFraction;
    }

    /** Absolute L1I miss-rate increase (DRI - conventional). */
    double extraMissRate() const
    {
        return driRun.missRate() - convRun.missRate();
    }
};

/** Build the comparison for a paired (conventional, DRI) run. */
ComparisonResult compareRuns(const EnergyConstants &constants,
                             const RunMeasurement &conv,
                             const RunMeasurement &dri);

// ---------------------------------------------------------------------
// Leakage-policy accounting (Dri / Decay / Drowsy / StaticWays L1I)
// ---------------------------------------------------------------------

/**
 * The Section 5.2 constants extended for the policy subsystem:
 * state-destroying (gated-Vdd) standby carries the Table 2 residual
 * instead of the architectural ~0, and state-preserving (drowsy)
 * standby carries the drowsy cell's residual plus a per-wake rail
 * recharge energy (circuit/drowsy_cell.hh).
 */
struct PolicyEnergyConstants
{
    /**
     * Default standby-state constants, shared with
     * MultiLevelConstants so the single-core and CMP accountings
     * can never drift apart: the Table 2 gated-Vdd residual, the
     * default drowsy cell's ~6.4x reduction and its per-line wake
     * energy (circuit/drowsy_cell.hh).
     */
    static constexpr double kDefaultGatedLeakFraction = 0.03;
    static constexpr double kDefaultDrowsyLeakFraction = 0.155;
    static constexpr double kDefaultWakePerTransitionNJ = 0.00045;

    EnergyConstants base = EnergyConstants::paper();

    /**
     * Gated (state-destroying) standby leakage as a fraction of
     * active leakage. Table 2's preferred gated-Vdd scheme saves
     * 97%; the paper's architectural accounting rounds the residual
     * to zero, the policy subsystem keeps it.
     */
    double gatedLeakFraction = kDefaultGatedLeakFraction;

    /**
     * Drowsy (state-preserving) standby leakage as a fraction of
     * active leakage — the default drowsy cell's ~6.4x reduction
     * (circuit/drowsy_cell.hh).
     */
    double drowsyLeakFraction = kDefaultDrowsyLeakFraction;

    /** Energy to wake one line's rail from drowsy to active, nJ. */
    double wakePerTransitionNJ = kDefaultWakePerTransitionNJ;

    /** The published L1 constants plus the defaults above. */
    static PolicyEnergyConstants paper();

    /**
     * Everything derived from the circuit substrate: the Section
     * 5.2 constants from the cache geometry, the gated residual
     * from the preferred gated-Vdd scheme, the drowsy pair from the
     * drowsy cell at @p l1BlockBytes-byte lines.
     */
    static PolicyEnergyConstants
    derived(const circuit::Technology &tech,
            const circuit::CacheGeometry &l1,
            const circuit::CacheGeometry &l2,
            unsigned l1BlockBytes = 32);
};

/** Raw measurements of one policy-managed run. */
struct PolicyMeasurement
{
    /** The classic view; avgActiveFraction counts full-Vdd lines
     *  only. */
    RunMeasurement meas;

    /** Time-averaged state-preserving (drowsy) fraction. The gated
     *  state-destroying fraction is 1 - active - drowsy. */
    double avgDrowsyFraction = 0.0;

    /** Drowsy->active (or gated->powered) wake transitions. */
    std::uint64_t wakeTransitions = 0;
};

/**
 * Energy decomposition of a policy-managed (or conventional) run:
 * the three leakage rows split by supply state, plus the dynamic
 * overheads. Conventional baselines put everything in the active
 * row.
 */
struct PolicyEnergy
{
    double activeLeakageNJ = 0.0;  ///< full-Vdd lines
    double gatedLeakageNJ = 0.0;   ///< state-destroying standby
    double drowsyLeakageNJ = 0.0;  ///< state-preserving standby
    double wakeTransitionNJ = 0.0; ///< rail recharges
    double extraL1DynamicNJ = 0.0; ///< resizing tag bitlines (Dri)
    double extraL2DynamicNJ = 0.0; ///< extra misses into the L2

    double leakageNJ() const
    {
        return activeLeakageNJ + gatedLeakageNJ + drowsyLeakageNJ;
    }
    double dynamicNJ() const
    {
        return wakeTransitionNJ + extraL1DynamicNJ +
               extraL2DynamicNJ;
    }
    double effectiveNJ() const { return leakageNJ() + dynamicNJ(); }

    /** Energy-delay product in nJ x cycles. */
    double energyDelay(Cycles cycles) const
    {
        return effectiveNJ() * static_cast<double>(cycles);
    }

    /** Labelled report rows in a fixed order (benches/tests). */
    std::vector<std::pair<std::string, double>> rows() const;
};

/**
 * Effective energy of a policy run paired against its conventional
 * baseline (extra L2 accesses = policy misses above the baseline's,
 * clamped at zero — the Section 5.2 convention).
 */
PolicyEnergy policyEnergy(const PolicyEnergyConstants &constants,
                          const PolicyMeasurement &run,
                          const RunMeasurement &conventional);

/** Baseline energy: the whole array active for the whole run. */
PolicyEnergy
conventionalPolicyEnergy(const PolicyEnergyConstants &constants,
                         const RunMeasurement &conventional);

/** Everything the policy comparison reports for one paired run. */
struct PolicyComparison
{
    PolicyEnergy policy;
    PolicyEnergy conventional;
    PolicyMeasurement run;
    RunMeasurement convRun;

    /** Policy energy-delay / conventional energy-delay. */
    double relativeEnergyDelay() const;

    /** Leakage-only component of the relative energy-delay. */
    double relativeEdLeakage() const;

    /** Dynamic (overhead) component of the relative energy-delay. */
    double relativeEdDynamic() const;

    /** Execution-time increase, percent (positive = slower). */
    double slowdownPercent() const;

    double averageActiveFraction() const
    {
        return run.meas.avgActiveFraction;
    }
    double averageDrowsyFraction() const
    {
        return run.avgDrowsyFraction;
    }

    /** Absolute L1I miss-rate increase (policy - conventional). */
    double extraMissRate() const
    {
        return run.meas.missRate() - convRun.missRate();
    }
};

/** Build the comparison for a paired (conventional, policy) run. */
PolicyComparison
comparePolicyRuns(const PolicyEnergyConstants &constants,
                  const RunMeasurement &conv,
                  const PolicyMeasurement &run);

// ---------------------------------------------------------------------
// Multi-level accounting (DRI L1I + DRI L2 vs conventional hierarchy)
// ---------------------------------------------------------------------

/** Per-level energy constants for the multi-level accounting. */
struct MultiLevelConstants
{
    /** The paper's L1-centric constants (leakage, tag bitline, and
     *  the dynamic cost of one L2 access). */
    EnergyConstants l1 = EnergyConstants::paper();

    /** Full-size L2 leakage per cycle (nJ) at l2BaseBytes. */
    double l2LeakPerCycleNJ = 14.56;
    /** Base L2 size the leakage figure refers to (bytes). */
    std::uint64_t l2BaseBytes = 1024 * 1024;
    /** Dynamic energy of one L2 resizing-tag bitline per access. */
    double l2BitlinePerAccessNJ = 0.0018;
    /**
     * Dynamic energy per main-memory access (nJ). Not in the paper
     * (its accounting stops at the L2); see docs/DESIGN.md,
     * Multi-level substitutions.
     */
    double memPerAccessNJ = 32.0;
    /**
     * Banked-DRAM busy/idle split (nJ per cycle). Both default to
     * zero, which keeps every flat-memory energy row byte-identical;
     * set them when the banked model's busyCycles measurement is
     * available and its activity should appear in the "mem" row.
     */
    double dramBusyPerCycleNJ = 0.0;
    double dramIdlePerCycleNJ = 0.0;

    /**
     * Standby-state constants for policy-managed CMP L1Is, shared
     * with PolicyEnergyConstants (one definition point — the two
     * accountings cannot drift). Classic conventional/DRI cores
     * report zero drowsy/gated-policy fractions and wakes, so all
     * three terms vanish and the classic numbers are untouched
     * (DRI rows keep the paper's zero-residual convention).
     */
    double gatedLeakFraction =
        PolicyEnergyConstants::kDefaultGatedLeakFraction;
    double drowsyLeakFraction =
        PolicyEnergyConstants::kDefaultDrowsyLeakFraction;
    double wakePerTransitionNJ =
        PolicyEnergyConstants::kDefaultWakePerTransitionNJ;

    /** Leakage per cycle for an L2 of @p bytes (scales linearly). */
    double l2LeakPerCycleFor(std::uint64_t bytes) const
    {
        return l2LeakPerCycleNJ * static_cast<double>(bytes) /
               static_cast<double>(l2BaseBytes);
    }

    /**
     * The paper's L1 constants plus an L2 at the same linear
     * leakage scaling (16x the 64 KB figure for the 1 MB array) and
     * a circuit-derived L2 tag bitline.
     */
    static MultiLevelConstants paper();

    /** All constants derived from per-level circuit points. */
    static MultiLevelConstants
    derived(const circuit::LevelCircuit &l1,
            const circuit::LevelCircuit &l2);
};

/** One level's share of the hierarchy energy (a report row). */
struct LevelEnergy
{
    std::string level;
    double leakageNJ = 0.0;
    double dynamicNJ = 0.0;

    double totalNJ() const { return leakageNJ + dynamicNJ; }
};

/**
 * Per-level decomposition of one run's effective energy. The totals
 * are defined as the sum over the rows, so "per-level rows sum to
 * the hierarchy total" holds by construction and is locked by tests.
 */
struct HierarchyEnergy
{
    std::vector<LevelEnergy> levels;

    double totalLeakageNJ() const;
    double totalDynamicNJ() const;
    double totalNJ() const;

    /** Energy-delay product in nJ x cycles. */
    double energyDelay(Cycles cycles) const
    {
        return totalNJ() * static_cast<double>(cycles);
    }

    /** Find a row by level name (nullptr when absent). */
    const LevelEnergy *level(const std::string &name) const;
};

/**
 * Raw multi-level measurements from one run. The harness fills this
 * from a RunOutput; conventional levels use avgActiveFraction = 1
 * and zero resizing-tag bits.
 */
struct MultiLevelMeasurement
{
    Cycles cycles = 0;
    InstCount instructions = 0;

    std::uint64_t l1Bytes = 64 * 1024;
    double l1AvgActiveFraction = 1.0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Misses = 0;
    unsigned l1ResizingTagBits = 0;

    std::uint64_t l2Bytes = 1024 * 1024;
    double l2AvgActiveFraction = 1.0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    unsigned l2ResizingTagBits = 0;

    std::uint64_t memAccesses = 0;
    /** Cycles the banked DRAM spent servicing fills (0 = flat). */
    std::uint64_t dramBusyCycles = 0;

    double l1MissRate() const
    {
        return l1Accesses == 0
                   ? 0.0
                   : static_cast<double>(l1Misses) /
                         static_cast<double>(l1Accesses);
    }
};

/**
 * Effective energy of a (possibly resizing) hierarchy run paired
 * against its conventional baseline. Rows: "l1i" and "l2" carry
 * their leakage plus resizing-tag dynamic overhead; extra traffic
 * induced by resizing (L1 misses above baseline hitting the L2, L2
 * misses above baseline hitting memory) is charged as dynamic
 * energy to the level that *receives* it, so the "mem" row carries
 * the extra off-chip dynamic energy and no leakage.
 */
HierarchyEnergy multiLevelEnergy(const MultiLevelConstants &constants,
                                 const MultiLevelMeasurement &run,
                                 const MultiLevelMeasurement &baseline);

/** Everything the multi-level report prints for one config pair. */
struct MultiLevelComparison
{
    HierarchyEnergy dri;
    HierarchyEnergy conventional;
    MultiLevelMeasurement driRun;
    MultiLevelMeasurement convRun;

    /** DRI hierarchy energy-delay / conventional energy-delay. */
    double relativeEnergyDelay() const;

    /** Leakage-only component of the relative energy-delay. */
    double relativeEdLeakage() const;

    /** Dynamic (overhead) component of the relative energy-delay. */
    double relativeEdDynamic() const;

    /** Execution-time increase, percent (positive = slower). */
    double slowdownPercent() const;

    double l1AverageSizeFraction() const
    {
        return driRun.l1AvgActiveFraction;
    }

    double l2AverageSizeFraction() const
    {
        return driRun.l2AvgActiveFraction;
    }
};

/** Build the multi-level comparison for a paired run. */
MultiLevelComparison
compareMultiLevel(const MultiLevelConstants &constants,
                  const MultiLevelMeasurement &conv,
                  const MultiLevelMeasurement &dri);

// ---------------------------------------------------------------------
// CMP accounting (N private L1Is + shared L2 vs conventional CMP)
// ---------------------------------------------------------------------

/** One core's L1I contribution to the CMP energy picture. */
struct CmpCoreMeasurement
{
    std::uint64_t l1Bytes = 64 * 1024;
    double l1AvgActiveFraction = 1.0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Misses = 0;
    unsigned l1ResizingTagBits = 0;

    /** Policy-managed cores only (coreK.policy=…): the
     *  state-preserving fraction, the state-destroying gated
     *  fraction carrying the Table 2 residual, and the wake count;
     *  all zero otherwise (classic DRI rows keep the paper's
     *  zero-residual convention). */
    double l1DrowsyFraction = 0.0;
    double l1GatedFraction = 0.0;
    std::uint64_t wakeTransitions = 0;
};

/**
 * Raw measurements from one CMP run. `cycles` is *system* time (the
 * slowest core's clock): every level leaks for as long as any core
 * is still running, so leakage integrals use it uniformly.
 */
struct CmpMeasurement
{
    Cycles cycles = 0;
    std::vector<CmpCoreMeasurement> cores;

    std::uint64_t l2Bytes = 1024 * 1024;
    double l2AvgActiveFraction = 1.0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    unsigned l2ResizingTagBits = 0;

    std::uint64_t memAccesses = 0;
    /** Cycles the banked DRAM spent servicing fills (0 = flat). */
    std::uint64_t dramBusyCycles = 0;
    /** Coherence probes sent (invalidations + downgrades); each is
     *  charged one L2-tier access energy on the shared row. Zero
     *  when the protocol is disabled, leaving every pre-coherence
     *  number untouched. */
    std::uint64_t coherenceMessages = 0;
};

/**
 * Per-level decomposition of one CMP run's effective energy, paired
 * against its conventional baseline: one "l1i[k]" row per core
 * (leakage + resizing-tag dynamic overhead), then shared "l2" and
 * "mem" rows under the same receives-the-traffic convention as
 * multiLevelEnergy(). The system totals are the row sums by
 * construction (HierarchyEnergy), locked by tests.
 */
HierarchyEnergy cmpEnergy(const MultiLevelConstants &constants,
                          const CmpMeasurement &run,
                          const CmpMeasurement &baseline);

/** Everything the CMP report prints for one config pair. */
struct CmpComparison
{
    HierarchyEnergy dri;
    HierarchyEnergy conventional;
    CmpMeasurement driRun;
    CmpMeasurement convRun;

    /** DRI system energy-delay / conventional energy-delay. */
    double relativeEnergyDelay() const;

    /** Leakage-only component of the relative energy-delay. */
    double relativeEdLeakage() const;

    /** Dynamic (overhead) component of the relative energy-delay. */
    double relativeEdDynamic() const;

    /** System-time increase, percent (positive = slower). */
    double slowdownPercent() const;

    /** Core @p k's average powered L1I fraction. */
    double coreAverageSizeFraction(std::size_t k) const
    {
        return k < driRun.cores.size()
                   ? driRun.cores[k].l1AvgActiveFraction
                   : 1.0;
    }

    double l2AverageSizeFraction() const
    {
        return driRun.l2AvgActiveFraction;
    }
};

/** Build the CMP comparison for a paired run. */
CmpComparison compareCmp(const MultiLevelConstants &constants,
                         const CmpMeasurement &conv,
                         const CmpMeasurement &dri);

} // namespace drisim

#endif // DRISIM_ENERGY_ACCOUNTING_HH
