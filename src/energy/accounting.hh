/**
 * @file
 * Paired-run comparison: normalized energy-delay, slowdown, average
 * size — the quantities Figures 3-6 plot.
 */

#ifndef DRISIM_ENERGY_ACCOUNTING_HH
#define DRISIM_ENERGY_ACCOUNTING_HH

#include "energy/energy_model.hh"

namespace drisim
{

/** Everything Figure 3 reports for one benchmark/config pair. */
struct ComparisonResult
{
    EnergyBreakdown dri;
    EnergyBreakdown conventional;
    RunMeasurement driRun;
    RunMeasurement convRun;

    /** DRI energy-delay / conventional energy-delay. */
    double relativeEnergyDelay() const;

    /** Leakage-only component of the relative energy-delay bar. */
    double relativeEdLeakage() const;

    /** Extra (L1+L2) dynamic component of the bar. */
    double relativeEdDynamic() const;

    /** Execution-time increase, percent (positive = slower). */
    double slowdownPercent() const;

    /** Average powered size as a fraction of the base size. */
    double averageSizeFraction() const
    {
        return driRun.avgActiveFraction;
    }

    /** Absolute L1I miss-rate increase (DRI - conventional). */
    double extraMissRate() const
    {
        return driRun.missRate() - convRun.missRate();
    }
};

/** Build the comparison for a paired (conventional, DRI) run. */
ComparisonResult compareRuns(const EnergyConstants &constants,
                             const RunMeasurement &conv,
                             const RunMeasurement &dri);

} // namespace drisim

#endif // DRISIM_ENERGY_ACCOUNTING_HH
