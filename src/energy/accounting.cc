/**
 * @file
 * Paired conventional/DRI comparison: normalized energy-delay,
 * slowdown and average active size — single-level (Figures 3-6) and
 * multi-level (per-level rows + hierarchy total).
 */

#include "energy/accounting.hh"

#include <algorithm>

namespace drisim
{

double
ComparisonResult::relativeEnergyDelay() const
{
    const double conv_ed =
        conventional.energyDelay(convRun.cycles);
    if (conv_ed <= 0.0)
        return 0.0;
    return dri.energyDelay(driRun.cycles) / conv_ed;
}

double
ComparisonResult::relativeEdLeakage() const
{
    const double conv_ed =
        conventional.energyDelay(convRun.cycles);
    if (conv_ed <= 0.0)
        return 0.0;
    return dri.l1LeakageNJ * static_cast<double>(driRun.cycles) /
           conv_ed;
}

double
ComparisonResult::relativeEdDynamic() const
{
    const double conv_ed =
        conventional.energyDelay(convRun.cycles);
    if (conv_ed <= 0.0)
        return 0.0;
    return (dri.extraL1DynamicNJ + dri.extraL2DynamicNJ) *
           static_cast<double>(driRun.cycles) / conv_ed;
}

double
ComparisonResult::slowdownPercent() const
{
    if (convRun.cycles == 0)
        return 0.0;
    return 100.0 *
           (static_cast<double>(driRun.cycles) /
                static_cast<double>(convRun.cycles) -
            1.0);
}

ComparisonResult
compareRuns(const EnergyConstants &constants, const RunMeasurement &conv,
            const RunMeasurement &dri)
{
    ComparisonResult r;
    r.convRun = conv;
    r.driRun = dri;
    r.conventional = conventionalEnergy(constants, conv);
    r.dri = driEnergy(constants, dri, conv);
    return r;
}

// ---------------------------------------------------------------------
// Multi-level accounting
// ---------------------------------------------------------------------

MultiLevelConstants
MultiLevelConstants::paper()
{
    return MultiLevelConstants{};
}

MultiLevelConstants
MultiLevelConstants::derived(const circuit::LevelCircuit &l1,
                             const circuit::LevelCircuit &l2)
{
    const circuit::LevelEnergyFigures f1 = circuit::levelFigures(l1);
    const circuit::LevelEnergyFigures f2 = circuit::levelFigures(l2);
    MultiLevelConstants c;
    c.l1.l1BaseBytes = l1.geom.sizeBytes;
    c.l1.l1LeakPerCycleNJ = f1.leakPerCycleNJ;
    c.l1.bitlinePerAccessNJ = f1.bitlineEnergyNJ;
    c.l1.l2PerAccessNJ = f2.accessEnergyNJ;
    c.l2BaseBytes = l2.geom.sizeBytes;
    c.l2LeakPerCycleNJ = f2.leakPerCycleNJ;
    c.l2BitlinePerAccessNJ = f2.bitlineEnergyNJ;
    return c;
}

double
HierarchyEnergy::totalLeakageNJ() const
{
    double sum = 0.0;
    for (const LevelEnergy &l : levels)
        sum += l.leakageNJ;
    return sum;
}

double
HierarchyEnergy::totalDynamicNJ() const
{
    double sum = 0.0;
    for (const LevelEnergy &l : levels)
        sum += l.dynamicNJ;
    return sum;
}

double
HierarchyEnergy::totalNJ() const
{
    double sum = 0.0;
    for (const LevelEnergy &l : levels)
        sum += l.totalNJ();
    return sum;
}

const LevelEnergy *
HierarchyEnergy::level(const std::string &name) const
{
    for (const LevelEnergy &l : levels)
        if (l.level == name)
            return &l;
    return nullptr;
}

HierarchyEnergy
multiLevelEnergy(const MultiLevelConstants &constants,
                 const MultiLevelMeasurement &run,
                 const MultiLevelMeasurement &baseline)
{
    const double cycles = static_cast<double>(run.cycles);

    LevelEnergy l1{"l1i", 0.0, 0.0};
    l1.leakageNJ = run.l1AvgActiveFraction *
                   constants.l1.leakPerCycleNJ(run.l1Bytes) * cycles;
    l1.dynamicNJ = static_cast<double>(run.l1ResizingTagBits) *
                   constants.l1.bitlinePerAccessNJ *
                   static_cast<double>(run.l1Accesses);

    // Extra traffic relative to the paired baseline is charged to
    // the level that receives it (clamped at zero, as in the
    // single-level model).
    const std::uint64_t extra_l2 =
        run.l2Accesses > baseline.l2Accesses
            ? run.l2Accesses - baseline.l2Accesses
            : 0;
    LevelEnergy l2{"l2", 0.0, 0.0};
    l2.leakageNJ = run.l2AvgActiveFraction *
                   constants.l2LeakPerCycleFor(run.l2Bytes) * cycles;
    l2.dynamicNJ = static_cast<double>(run.l2ResizingTagBits) *
                       constants.l2BitlinePerAccessNJ *
                       static_cast<double>(run.l2Accesses) +
                   constants.l1.l2PerAccessNJ *
                       static_cast<double>(extra_l2);

    const std::uint64_t extra_mem =
        run.memAccesses > baseline.memAccesses
            ? run.memAccesses - baseline.memAccesses
            : 0;
    LevelEnergy mem{"mem", 0.0, 0.0};
    mem.dynamicNJ =
        constants.memPerAccessNJ * static_cast<double>(extra_mem);

    HierarchyEnergy h;
    h.levels = {l1, l2, mem};
    return h;
}

double
MultiLevelComparison::relativeEnergyDelay() const
{
    const double conv_ed = conventional.energyDelay(convRun.cycles);
    if (conv_ed <= 0.0)
        return 0.0;
    return dri.energyDelay(driRun.cycles) / conv_ed;
}

double
MultiLevelComparison::relativeEdLeakage() const
{
    const double conv_ed = conventional.energyDelay(convRun.cycles);
    if (conv_ed <= 0.0)
        return 0.0;
    return dri.totalLeakageNJ() *
           static_cast<double>(driRun.cycles) / conv_ed;
}

double
MultiLevelComparison::relativeEdDynamic() const
{
    const double conv_ed = conventional.energyDelay(convRun.cycles);
    if (conv_ed <= 0.0)
        return 0.0;
    return dri.totalDynamicNJ() *
           static_cast<double>(driRun.cycles) / conv_ed;
}

double
MultiLevelComparison::slowdownPercent() const
{
    if (convRun.cycles == 0)
        return 0.0;
    return 100.0 *
           (static_cast<double>(driRun.cycles) /
                static_cast<double>(convRun.cycles) -
            1.0);
}

MultiLevelComparison
compareMultiLevel(const MultiLevelConstants &constants,
                  const MultiLevelMeasurement &conv,
                  const MultiLevelMeasurement &dri)
{
    MultiLevelComparison r;
    r.convRun = conv;
    r.driRun = dri;
    r.conventional = multiLevelEnergy(constants, conv, conv);
    r.dri = multiLevelEnergy(constants, dri, conv);
    return r;
}

// ---------------------------------------------------------------------
// CMP accounting
// ---------------------------------------------------------------------

HierarchyEnergy
cmpEnergy(const MultiLevelConstants &constants,
          const CmpMeasurement &run, const CmpMeasurement &baseline)
{
    const double cycles = static_cast<double>(run.cycles);

    HierarchyEnergy h;
    h.levels.reserve(run.cores.size() + 2);

    // One private-L1I row per core. Each array leaks for the whole
    // system time regardless of its own core's progress (an idle
    // core's cache still burns standby power unless gated).
    for (std::size_t k = 0; k < run.cores.size(); ++k) {
        const CmpCoreMeasurement &c = run.cores[k];
        LevelEnergy l1{"l1i[" + std::to_string(k) + "]", 0.0, 0.0};
        l1.leakageNJ = c.l1AvgActiveFraction *
                       constants.l1.leakPerCycleNJ(c.l1Bytes) *
                       cycles;
        l1.dynamicNJ = static_cast<double>(c.l1ResizingTagBits) *
                       constants.l1.bitlinePerAccessNJ *
                       static_cast<double>(c.l1Accesses);
        h.levels.push_back(l1);
    }

    // Shared rows follow the multi-level convention: extra traffic
    // relative to the paired baseline is charged to the level that
    // receives it (clamped at zero).
    const std::uint64_t extra_l2 =
        run.l2Accesses > baseline.l2Accesses
            ? run.l2Accesses - baseline.l2Accesses
            : 0;
    LevelEnergy l2{"l2", 0.0, 0.0};
    l2.leakageNJ = run.l2AvgActiveFraction *
                   constants.l2LeakPerCycleFor(run.l2Bytes) * cycles;
    l2.dynamicNJ = static_cast<double>(run.l2ResizingTagBits) *
                       constants.l2BitlinePerAccessNJ *
                       static_cast<double>(run.l2Accesses) +
                   constants.l1.l2PerAccessNJ *
                       static_cast<double>(extra_l2);
    h.levels.push_back(l2);

    const std::uint64_t extra_mem =
        run.memAccesses > baseline.memAccesses
            ? run.memAccesses - baseline.memAccesses
            : 0;
    LevelEnergy mem{"mem", 0.0, 0.0};
    mem.dynamicNJ =
        constants.memPerAccessNJ * static_cast<double>(extra_mem);
    h.levels.push_back(mem);

    return h;
}

double
CmpComparison::relativeEnergyDelay() const
{
    const double conv_ed = conventional.energyDelay(convRun.cycles);
    if (conv_ed <= 0.0)
        return 0.0;
    return dri.energyDelay(driRun.cycles) / conv_ed;
}

double
CmpComparison::relativeEdLeakage() const
{
    const double conv_ed = conventional.energyDelay(convRun.cycles);
    if (conv_ed <= 0.0)
        return 0.0;
    return dri.totalLeakageNJ() * static_cast<double>(driRun.cycles) /
           conv_ed;
}

double
CmpComparison::relativeEdDynamic() const
{
    const double conv_ed = conventional.energyDelay(convRun.cycles);
    if (conv_ed <= 0.0)
        return 0.0;
    return dri.totalDynamicNJ() * static_cast<double>(driRun.cycles) /
           conv_ed;
}

double
CmpComparison::slowdownPercent() const
{
    if (convRun.cycles == 0)
        return 0.0;
    return 100.0 *
           (static_cast<double>(driRun.cycles) /
                static_cast<double>(convRun.cycles) -
            1.0);
}

CmpComparison
compareCmp(const MultiLevelConstants &constants,
           const CmpMeasurement &conv, const CmpMeasurement &dri)
{
    CmpComparison r;
    r.convRun = conv;
    r.driRun = dri;
    r.conventional = cmpEnergy(constants, conv, conv);
    r.dri = cmpEnergy(constants, dri, conv);
    return r;
}

} // namespace drisim
