/**
 * @file
 * Paired conventional/DRI comparison: normalized energy-delay,
 * slowdown and average active size — single-level (Figures 3-6) and
 * multi-level (per-level rows + hierarchy total).
 */

#include "energy/accounting.hh"

#include <algorithm>

#include "circuit/gated_vdd.hh"

namespace drisim
{

namespace
{

/** num / denom with the shared conv-ED guard (<= 0 → 0). Every
 *  comparison flavour's relative-ED methods reduce to this. */
double
ratioOrZero(double num, double denom)
{
    return denom <= 0.0 ? 0.0 : num / denom;
}

/** Execution-time increase in percent (positive = slower). */
double
slowdownPct(Cycles run, Cycles conv)
{
    if (conv == 0)
        return 0.0;
    return 100.0 * (static_cast<double>(run) /
                        static_cast<double>(conv) -
                    1.0);
}

} // namespace

double
ComparisonResult::relativeEnergyDelay() const
{
    return ratioOrZero(dri.energyDelay(driRun.cycles),
                       conventional.energyDelay(convRun.cycles));
}

double
ComparisonResult::relativeEdLeakage() const
{
    return ratioOrZero(dri.l1LeakageNJ *
                           static_cast<double>(driRun.cycles),
                       conventional.energyDelay(convRun.cycles));
}

double
ComparisonResult::relativeEdDynamic() const
{
    return ratioOrZero((dri.extraL1DynamicNJ + dri.extraL2DynamicNJ) *
                           static_cast<double>(driRun.cycles),
                       conventional.energyDelay(convRun.cycles));
}

double
ComparisonResult::slowdownPercent() const
{
    return slowdownPct(driRun.cycles, convRun.cycles);
}

ComparisonResult
compareRuns(const EnergyConstants &constants, const RunMeasurement &conv,
            const RunMeasurement &dri)
{
    ComparisonResult r;
    r.convRun = conv;
    r.driRun = dri;
    r.conventional = conventionalEnergy(constants, conv);
    r.dri = driEnergy(constants, dri, conv);
    return r;
}

// ---------------------------------------------------------------------
// Leakage-policy accounting
// ---------------------------------------------------------------------

PolicyEnergyConstants
PolicyEnergyConstants::paper()
{
    return PolicyEnergyConstants{};
}

PolicyEnergyConstants
PolicyEnergyConstants::derived(const circuit::Technology &tech,
                               const circuit::CacheGeometry &l1,
                               const circuit::CacheGeometry &l2,
                               unsigned l1BlockBytes)
{
    PolicyEnergyConstants c;
    c.base = EnergyConstants::derived(tech, l1, l2);

    const circuit::SramCell cell(tech, tech.vtLow);
    const circuit::GatedVdd gated(tech, cell,
                                  circuit::GatedVddConfig{});
    c.gatedLeakFraction = 1.0 - gated.leakageSavingsFraction();

    const circuit::DrowsyCell drowsy(tech, cell,
                                     circuit::DrowsyCellConfig{});
    c.drowsyLeakFraction = drowsy.standbyLeakageFraction();
    c.wakePerTransitionNJ =
        drowsy.wakeEnergyPerLineNJ(l1BlockBytes * 8);
    return c;
}

std::vector<std::pair<std::string, double>>
PolicyEnergy::rows() const
{
    return {{"leak-active", activeLeakageNJ},
            {"leak-gated", gatedLeakageNJ},
            {"leak-drowsy", drowsyLeakageNJ},
            {"wake", wakeTransitionNJ},
            {"l1-dynamic", extraL1DynamicNJ},
            {"l2-dynamic", extraL2DynamicNJ}};
}

PolicyEnergy
policyEnergy(const PolicyEnergyConstants &constants,
             const PolicyMeasurement &run,
             const RunMeasurement &conventional)
{
    const double leak_per_cycle =
        constants.base.leakPerCycleNJ(run.meas.l1iBytes);
    const double cycles = static_cast<double>(run.meas.cycles);

    PolicyEnergy e;
    const double active = run.meas.avgActiveFraction;
    const double drowsy = run.avgDrowsyFraction;
    const double gated =
        std::max(0.0, 1.0 - active - drowsy);
    e.activeLeakageNJ = active * leak_per_cycle * cycles;
    e.gatedLeakageNJ =
        gated * constants.gatedLeakFraction * leak_per_cycle * cycles;
    e.drowsyLeakageNJ = drowsy * constants.drowsyLeakFraction *
                        leak_per_cycle * cycles;
    e.wakeTransitionNJ = constants.wakePerTransitionNJ *
                         static_cast<double>(run.wakeTransitions);
    e.extraL1DynamicNJ =
        static_cast<double>(run.meas.resizingTagBits) *
        constants.base.bitlinePerAccessNJ *
        static_cast<double>(run.meas.l1iAccesses);
    const std::uint64_t extra_l2 =
        run.meas.l1iMisses > conventional.l1iMisses
            ? run.meas.l1iMisses - conventional.l1iMisses
            : 0;
    e.extraL2DynamicNJ =
        constants.base.l2PerAccessNJ * static_cast<double>(extra_l2);
    return e;
}

PolicyEnergy
conventionalPolicyEnergy(const PolicyEnergyConstants &constants,
                         const RunMeasurement &conventional)
{
    PolicyEnergy e;
    e.activeLeakageNJ =
        constants.base.leakPerCycleNJ(conventional.l1iBytes) *
        static_cast<double>(conventional.cycles);
    return e;
}

double
PolicyComparison::relativeEnergyDelay() const
{
    return ratioOrZero(policy.energyDelay(run.meas.cycles),
                       conventional.energyDelay(convRun.cycles));
}

double
PolicyComparison::relativeEdLeakage() const
{
    return ratioOrZero(policy.leakageNJ() *
                           static_cast<double>(run.meas.cycles),
                       conventional.energyDelay(convRun.cycles));
}

double
PolicyComparison::relativeEdDynamic() const
{
    return ratioOrZero(policy.dynamicNJ() *
                           static_cast<double>(run.meas.cycles),
                       conventional.energyDelay(convRun.cycles));
}

double
PolicyComparison::slowdownPercent() const
{
    return slowdownPct(run.meas.cycles, convRun.cycles);
}

PolicyComparison
comparePolicyRuns(const PolicyEnergyConstants &constants,
                  const RunMeasurement &conv,
                  const PolicyMeasurement &run)
{
    PolicyComparison r;
    r.convRun = conv;
    r.run = run;
    r.conventional = conventionalPolicyEnergy(constants, conv);
    r.policy = policyEnergy(constants, run, conv);
    return r;
}

// ---------------------------------------------------------------------
// Multi-level accounting
// ---------------------------------------------------------------------

MultiLevelConstants
MultiLevelConstants::paper()
{
    return MultiLevelConstants{};
}

MultiLevelConstants
MultiLevelConstants::derived(const circuit::LevelCircuit &l1,
                             const circuit::LevelCircuit &l2)
{
    const circuit::LevelEnergyFigures f1 = circuit::levelFigures(l1);
    const circuit::LevelEnergyFigures f2 = circuit::levelFigures(l2);
    MultiLevelConstants c;
    c.l1.l1BaseBytes = l1.geom.sizeBytes;
    c.l1.l1LeakPerCycleNJ = f1.leakPerCycleNJ;
    c.l1.bitlinePerAccessNJ = f1.bitlineEnergyNJ;
    c.l1.l2PerAccessNJ = f2.accessEnergyNJ;
    c.l2BaseBytes = l2.geom.sizeBytes;
    c.l2LeakPerCycleNJ = f2.leakPerCycleNJ;
    c.l2BitlinePerAccessNJ = f2.bitlineEnergyNJ;
    return c;
}

double
HierarchyEnergy::totalLeakageNJ() const
{
    double sum = 0.0;
    for (const LevelEnergy &l : levels)
        sum += l.leakageNJ;
    return sum;
}

double
HierarchyEnergy::totalDynamicNJ() const
{
    double sum = 0.0;
    for (const LevelEnergy &l : levels)
        sum += l.dynamicNJ;
    return sum;
}

double
HierarchyEnergy::totalNJ() const
{
    double sum = 0.0;
    for (const LevelEnergy &l : levels)
        sum += l.totalNJ();
    return sum;
}

const LevelEnergy *
HierarchyEnergy::level(const std::string &name) const
{
    for (const LevelEnergy &l : levels)
        if (l.level == name)
            return &l;
    return nullptr;
}

HierarchyEnergy
multiLevelEnergy(const MultiLevelConstants &constants,
                 const MultiLevelMeasurement &run,
                 const MultiLevelMeasurement &baseline)
{
    const double cycles = static_cast<double>(run.cycles);

    LevelEnergy l1{"l1i", 0.0, 0.0};
    l1.leakageNJ = run.l1AvgActiveFraction *
                   constants.l1.leakPerCycleNJ(run.l1Bytes) * cycles;
    l1.dynamicNJ = static_cast<double>(run.l1ResizingTagBits) *
                   constants.l1.bitlinePerAccessNJ *
                   static_cast<double>(run.l1Accesses);

    // Extra traffic relative to the paired baseline is charged to
    // the level that receives it (clamped at zero, as in the
    // single-level model).
    const std::uint64_t extra_l2 =
        run.l2Accesses > baseline.l2Accesses
            ? run.l2Accesses - baseline.l2Accesses
            : 0;
    LevelEnergy l2{"l2", 0.0, 0.0};
    l2.leakageNJ = run.l2AvgActiveFraction *
                   constants.l2LeakPerCycleFor(run.l2Bytes) * cycles;
    l2.dynamicNJ = static_cast<double>(run.l2ResizingTagBits) *
                       constants.l2BitlinePerAccessNJ *
                       static_cast<double>(run.l2Accesses) +
                   constants.l1.l2PerAccessNJ *
                       static_cast<double>(extra_l2);

    const std::uint64_t extra_mem =
        run.memAccesses > baseline.memAccesses
            ? run.memAccesses - baseline.memAccesses
            : 0;
    LevelEnergy mem{"mem", 0.0, 0.0};
    mem.dynamicNJ =
        constants.memPerAccessNJ * static_cast<double>(extra_mem);
    // Banked-DRAM busy/idle terms fold into the existing row; both
    // constants default to zero, so flat runs are byte-identical.
    if (constants.dramBusyPerCycleNJ != 0.0)
        mem.dynamicNJ += constants.dramBusyPerCycleNJ *
                         static_cast<double>(run.dramBusyCycles);
    if (constants.dramIdlePerCycleNJ != 0.0) {
        const double busy = static_cast<double>(run.dramBusyCycles);
        mem.leakageNJ += constants.dramIdlePerCycleNJ *
                         (cycles > busy ? cycles - busy : 0.0);
    }

    HierarchyEnergy h;
    h.levels = {l1, l2, mem};
    return h;
}

double
MultiLevelComparison::relativeEnergyDelay() const
{
    return ratioOrZero(dri.energyDelay(driRun.cycles),
                       conventional.energyDelay(convRun.cycles));
}

double
MultiLevelComparison::relativeEdLeakage() const
{
    return ratioOrZero(dri.totalLeakageNJ() *
                           static_cast<double>(driRun.cycles),
                       conventional.energyDelay(convRun.cycles));
}

double
MultiLevelComparison::relativeEdDynamic() const
{
    return ratioOrZero(dri.totalDynamicNJ() *
                           static_cast<double>(driRun.cycles),
                       conventional.energyDelay(convRun.cycles));
}

double
MultiLevelComparison::slowdownPercent() const
{
    return slowdownPct(driRun.cycles, convRun.cycles);
}

MultiLevelComparison
compareMultiLevel(const MultiLevelConstants &constants,
                  const MultiLevelMeasurement &conv,
                  const MultiLevelMeasurement &dri)
{
    MultiLevelComparison r;
    r.convRun = conv;
    r.driRun = dri;
    r.conventional = multiLevelEnergy(constants, conv, conv);
    r.dri = multiLevelEnergy(constants, dri, conv);
    return r;
}

// ---------------------------------------------------------------------
// CMP accounting
// ---------------------------------------------------------------------

HierarchyEnergy
cmpEnergy(const MultiLevelConstants &constants,
          const CmpMeasurement &run, const CmpMeasurement &baseline)
{
    const double cycles = static_cast<double>(run.cycles);

    HierarchyEnergy h;
    h.levels.reserve(run.cores.size() + 2);

    // One private-L1I row per core. Each array leaks for the whole
    // system time regardless of its own core's progress (an idle
    // core's cache still burns standby power unless gated).
    for (std::size_t k = 0; k < run.cores.size(); ++k) {
        const CmpCoreMeasurement &c = run.cores[k];
        const double leak_per_cycle =
            constants.l1.leakPerCycleNJ(c.l1Bytes);
        LevelEnergy l1{"l1i[" + std::to_string(k) + "]", 0.0, 0.0};
        // Full-Vdd lines leak at the active rate; a drowsy (state-
        // preserving) fraction leaks at its residual rate; a
        // gated policy fraction carries the Table 2 residual — the
        // same split as policyEnergy(), so single-core and CMP
        // numbers agree. All three extra fractions are zero for
        // conventional and classic DRI cores, so the classic
        // numbers are untouched.
        l1.leakageNJ = (c.l1AvgActiveFraction +
                        c.l1DrowsyFraction *
                            constants.drowsyLeakFraction +
                        c.l1GatedFraction *
                            constants.gatedLeakFraction) *
                       leak_per_cycle * cycles;
        l1.dynamicNJ = static_cast<double>(c.l1ResizingTagBits) *
                           constants.l1.bitlinePerAccessNJ *
                           static_cast<double>(c.l1Accesses) +
                       constants.wakePerTransitionNJ *
                           static_cast<double>(c.wakeTransitions);
        h.levels.push_back(l1);
    }

    // Shared rows follow the multi-level convention: extra traffic
    // relative to the paired baseline is charged to the level that
    // receives it (clamped at zero).
    const std::uint64_t extra_l2 =
        run.l2Accesses > baseline.l2Accesses
            ? run.l2Accesses - baseline.l2Accesses
            : 0;
    LevelEnergy l2{"l2", 0.0, 0.0};
    l2.leakageNJ = run.l2AvgActiveFraction *
                   constants.l2LeakPerCycleFor(run.l2Bytes) * cycles;
    l2.dynamicNJ = static_cast<double>(run.l2ResizingTagBits) *
                       constants.l2BitlinePerAccessNJ *
                       static_cast<double>(run.l2Accesses) +
                   constants.l1.l2PerAccessNJ *
                       static_cast<double>(extra_l2);
    // Each coherence probe is a directory lookup plus an L1 tag
    // snoop routed through the shared level: charge it one L2-tier
    // access. coherenceMessages is zero when the protocol is off.
    l2.dynamicNJ += constants.l1.l2PerAccessNJ *
                    static_cast<double>(run.coherenceMessages);
    h.levels.push_back(l2);

    const std::uint64_t extra_mem =
        run.memAccesses > baseline.memAccesses
            ? run.memAccesses - baseline.memAccesses
            : 0;
    LevelEnergy mem{"mem", 0.0, 0.0};
    mem.dynamicNJ =
        constants.memPerAccessNJ * static_cast<double>(extra_mem);
    // Banked-DRAM busy/idle terms fold into the existing row; both
    // constants default to zero, so flat runs are byte-identical.
    if (constants.dramBusyPerCycleNJ != 0.0)
        mem.dynamicNJ += constants.dramBusyPerCycleNJ *
                         static_cast<double>(run.dramBusyCycles);
    if (constants.dramIdlePerCycleNJ != 0.0) {
        const double busy = static_cast<double>(run.dramBusyCycles);
        mem.leakageNJ += constants.dramIdlePerCycleNJ *
                         (cycles > busy ? cycles - busy : 0.0);
    }
    h.levels.push_back(mem);

    return h;
}

double
CmpComparison::relativeEnergyDelay() const
{
    return ratioOrZero(dri.energyDelay(driRun.cycles),
                       conventional.energyDelay(convRun.cycles));
}

double
CmpComparison::relativeEdLeakage() const
{
    return ratioOrZero(dri.totalLeakageNJ() *
                           static_cast<double>(driRun.cycles),
                       conventional.energyDelay(convRun.cycles));
}

double
CmpComparison::relativeEdDynamic() const
{
    return ratioOrZero(dri.totalDynamicNJ() *
                           static_cast<double>(driRun.cycles),
                       conventional.energyDelay(convRun.cycles));
}

double
CmpComparison::slowdownPercent() const
{
    return slowdownPct(driRun.cycles, convRun.cycles);
}

CmpComparison
compareCmp(const MultiLevelConstants &constants,
           const CmpMeasurement &conv, const CmpMeasurement &dri)
{
    CmpComparison r;
    r.convRun = conv;
    r.driRun = dri;
    r.conventional = cmpEnergy(constants, conv, conv);
    r.dri = cmpEnergy(constants, dri, conv);
    return r;
}

} // namespace drisim
