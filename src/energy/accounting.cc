/**
 * @file
 * Paired conventional/DRI comparison: normalized energy-delay,
 * slowdown and average active size.
 */

#include "energy/accounting.hh"

namespace drisim
{

double
ComparisonResult::relativeEnergyDelay() const
{
    const double conv_ed =
        conventional.energyDelay(convRun.cycles);
    if (conv_ed <= 0.0)
        return 0.0;
    return dri.energyDelay(driRun.cycles) / conv_ed;
}

double
ComparisonResult::relativeEdLeakage() const
{
    const double conv_ed =
        conventional.energyDelay(convRun.cycles);
    if (conv_ed <= 0.0)
        return 0.0;
    return dri.l1LeakageNJ * static_cast<double>(driRun.cycles) /
           conv_ed;
}

double
ComparisonResult::relativeEdDynamic() const
{
    const double conv_ed =
        conventional.energyDelay(convRun.cycles);
    if (conv_ed <= 0.0)
        return 0.0;
    return (dri.extraL1DynamicNJ + dri.extraL2DynamicNJ) *
           static_cast<double>(driRun.cycles) / conv_ed;
}

double
ComparisonResult::slowdownPercent() const
{
    if (convRun.cycles == 0)
        return 0.0;
    return 100.0 *
           (static_cast<double>(driRun.cycles) /
                static_cast<double>(convRun.cycles) -
            1.0);
}

ComparisonResult
compareRuns(const EnergyConstants &constants, const RunMeasurement &conv,
            const RunMeasurement &dri)
{
    ComparisonResult r;
    r.convRun = conv;
    r.driRun = dri;
    r.conventional = conventionalEnergy(constants, conv);
    r.dri = driEnergy(constants, dri, conv);
    return r;
}

} // namespace drisim
