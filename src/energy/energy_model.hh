/**
 * @file
 * The paper's energy accounting (Section 5.2):
 *
 *   energy savings   = conventional leakage - effective DRI leakage
 *   effective DRI    = L1 leakage + extra L1 dynamic + extra L2 dynamic
 *   L1 leakage       = active fraction x convLeak/cycle x cycles
 *                      (standby term ~ 0 with gated-Vdd)
 *   extra L1 dynamic = resizing bits x bitline energy x L1 accesses
 *   extra L2 dynamic = L2 energy/access x extra L2 accesses
 *
 * The three constants can be taken from the paper (0.91 nJ, 0.0022
 * nJ, 3.6 nJ) or derived from the circuit substrate; both are
 * provided and tested against each other.
 */

#ifndef DRISIM_ENERGY_ENERGY_MODEL_HH
#define DRISIM_ENERGY_ENERGY_MODEL_HH

#include <cstdint>

#include "circuit/cache_energy.hh"
#include "util/types.hh"

namespace drisim
{

/** The three Section 5.2 constants plus the geometry they assume. */
struct EnergyConstants
{
    /** Full-size L1 leakage per cycle (nJ) at the base size. */
    double l1LeakPerCycleNJ = 0.91;
    /** Base L1 size the leakage figure refers to (bytes). */
    std::uint64_t l1BaseBytes = 64 * 1024;
    /** Dynamic energy of one resizing-tag bitline per access (nJ). */
    double bitlinePerAccessNJ = 0.0022;
    /** Dynamic energy per L2 access (nJ). */
    double l2PerAccessNJ = 3.6;

    /** Leakage per cycle for an L1 of @p bytes (scales linearly). */
    double leakPerCycleNJ(std::uint64_t bytes) const
    {
        return l1LeakPerCycleNJ * static_cast<double>(bytes) /
               static_cast<double>(l1BaseBytes);
    }

    /** The constants exactly as published. */
    static EnergyConstants paper();

    /** The constants derived from the circuit substrate. */
    static EnergyConstants
    derived(const circuit::Technology &tech,
            const circuit::CacheGeometry &l1,
            const circuit::CacheGeometry &l2);
};

/** Raw measurements from one simulation run. */
struct RunMeasurement
{
    Cycles cycles = 0;
    InstCount instructions = 0;
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iMisses = 0;
    /** Time-averaged powered fraction of the L1I (1.0 = fixed). */
    double avgActiveFraction = 1.0;
    /** Resizing tag bits in use (0 for a conventional cache). */
    unsigned resizingTagBits = 0;
    /** L1I capacity in bytes (base size). */
    std::uint64_t l1iBytes = 64 * 1024;

    double missRate() const
    {
        return l1iAccesses == 0
                   ? 0.0
                   : static_cast<double>(l1iMisses) /
                         static_cast<double>(l1iAccesses);
    }
};

/** Energy decomposition of a DRI (or conventional) run. */
struct EnergyBreakdown
{
    double l1LeakageNJ = 0.0;
    double extraL1DynamicNJ = 0.0;
    double extraL2DynamicNJ = 0.0;

    double effectiveNJ() const
    {
        return l1LeakageNJ + extraL1DynamicNJ + extraL2DynamicNJ;
    }

    /** Energy-delay product in nJ x cycles. */
    double energyDelay(Cycles cycles) const
    {
        return effectiveNJ() * static_cast<double>(cycles);
    }
};

/**
 * Effective leakage energy of a DRI run paired against its
 * conventional baseline (extra L2 accesses = DRI misses above the
 * conventional cache's misses, clamped at zero).
 */
EnergyBreakdown driEnergy(const EnergyConstants &constants,
                          const RunMeasurement &dri,
                          const RunMeasurement &conventional);

/** Leakage energy of the conventional baseline run. */
EnergyBreakdown conventionalEnergy(const EnergyConstants &constants,
                                   const RunMeasurement &conventional);

} // namespace drisim

#endif // DRISIM_ENERGY_ENERGY_MODEL_HH
