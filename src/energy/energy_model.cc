/**
 * @file
 * Section 5.2 energy accounting: leakage plus extra-dynamic terms.
 */

#include "energy/energy_model.hh"

#include <algorithm>

namespace drisim
{

EnergyConstants
EnergyConstants::paper()
{
    return EnergyConstants{};
}

EnergyConstants
EnergyConstants::derived(const circuit::Technology &tech,
                         const circuit::CacheGeometry &l1,
                         const circuit::CacheGeometry &l2)
{
    const circuit::CacheEnergyModel l1m(tech, l1);
    const circuit::CacheEnergyModel l2m(tech, l2);
    EnergyConstants c;
    c.l1BaseBytes = l1.sizeBytes;
    c.l1LeakPerCycleNJ = l1m.fullLeakagePerCycleNJ();
    c.bitlinePerAccessNJ = l1m.bitlineEnergyNJ();
    c.l2PerAccessNJ = l2m.accessEnergyNJ();
    return c;
}

EnergyBreakdown
driEnergy(const EnergyConstants &constants, const RunMeasurement &dri,
          const RunMeasurement &conventional)
{
    EnergyBreakdown e;
    e.l1LeakageNJ = dri.avgActiveFraction *
                    constants.leakPerCycleNJ(dri.l1iBytes) *
                    static_cast<double>(dri.cycles);
    e.extraL1DynamicNJ = static_cast<double>(dri.resizingTagBits) *
                         constants.bitlinePerAccessNJ *
                         static_cast<double>(dri.l1iAccesses);
    const std::uint64_t extra_l2 =
        dri.l1iMisses > conventional.l1iMisses
            ? dri.l1iMisses - conventional.l1iMisses
            : 0;
    e.extraL2DynamicNJ =
        constants.l2PerAccessNJ * static_cast<double>(extra_l2);
    return e;
}

EnergyBreakdown
conventionalEnergy(const EnergyConstants &constants,
                   const RunMeasurement &conventional)
{
    EnergyBreakdown e;
    e.l1LeakageNJ = constants.leakPerCycleNJ(conventional.l1iBytes) *
                    static_cast<double>(conventional.cycles);
    return e;
}

} // namespace drisim
