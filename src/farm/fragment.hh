/**
 * @file
 * Per-shard sweep-result fragments (docs/REPRODUCTION.md, Farm
 * mode).
 *
 * A sharded bench run streams every completed unit's report rows
 * into a BENCH_*.part.json fragment, rewritten record-at-a-time via
 * temp-file + atomic rename: a shard killed at any instant leaves a
 * fragment that is a complete, parseable prefix of its work — it
 * loses at most the in-flight unit. Re-running the same shard
 * resumes from the fragment (completed units are never recomputed;
 * locked by tests/farm_test.cc and the CI farm leg).
 *
 * The fragment carries the full sweep plan (every unit's index and
 * stable config hash, not just this shard's), so tools/sweep_merge
 * can detect holes and attribute each missing unit to the shard
 * that owns it without re-deriving the grid.
 */

#ifndef DRISIM_FARM_FRAGMENT_HH
#define DRISIM_FARM_FRAGMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "farm/shard_plan.hh"

namespace drisim::farm
{

/**
 * One row-producing unit of a sweep, in plan order. `hash` is the
 * FNV-1a of `config` (the unit's canonical ConfigKey string) — the
 * shard key and the merge dedup key.
 */
struct SweepUnit
{
    /** Display label (benchmark or mix name). */
    std::string label;
    /** Canonical config string of the unit's identity key. */
    std::string config;
    std::uint64_t hash = 0;
    /** toHex64(hash), as stored in fragments and manifests. */
    std::string hashHex;
};

/** A completed unit recorded in a fragment. */
struct FragmentRecord
{
    std::uint64_t index = 0; ///< plan index
    std::string hash;        ///< unit hash (hex)
    std::string config;      ///< full canonical config string
    /**
     * Wall seconds the unit took, formatted "%.3f" (pinned by
     * DRISIM_JSON_WALL_SECONDS like the report wall clock).
     * Provenance only: merge dedup compares config and rows, never
     * this — overlapping re-runs legitimately differ here.
     */
    std::string wallSeconds = "0.000";
    /** The unit's report rows (>= 0 rows of column cells). */
    std::vector<std::vector<std::string>> rows;
};

/** A planned unit as recorded in a fragment (index + hash only). */
struct FragmentPlanEntry
{
    std::uint64_t index = 0;
    std::string hash;
};

/** One shard's result stream, as read from/written to disk. */
struct Fragment
{
    /** 2: records carry per-unit wall_seconds. A version-1 file
     *  fails the strict parse and is discarded on resume (the shard
     *  starts clean), never misread. */
    unsigned schemaVersion = 2;
    std::string bench; ///< report name, e.g. "bench_figure4"
    ShardPlan shard;
    std::vector<std::string> columns;
    /** The FULL sweep plan (all shards' units). */
    std::vector<FragmentPlanEntry> plan;
    /** This shard's completed units, in completion order. */
    std::vector<FragmentRecord> records;
    /** True once the shard ran every unit it owns. */
    bool complete = false;

    /** Where the fragment was read from (diagnostics only). */
    std::string sourcePath;
};

/** Serialize @p f to its on-disk JSON form. */
std::string renderFragment(const Fragment &f);

/**
 * Parse a fragment file. Returns false with @p error on a missing
 * or malformed file — a torn write cannot happen (writes are
 * rename-atomic), so any parse failure means the file is not a
 * fragment at all.
 */
bool readFragment(const std::string &path, Fragment &out,
                  std::string &error);

/** write tmp + fsync-less atomic rename (same pattern as the
 *  result-cache sidecar of PR 6). */
bool writeFileAtomic(const std::string &path,
                     const std::string &contents,
                     std::string &error);

/**
 * Record-at-a-time fragment writer with resume. Construction reads
 * any existing fragment at @p path: if it matches this run's
 * identity (bench, shard spec, columns and full plan), its records
 * are adopted and hasRecord() reports them, so the caller skips
 * those units entirely; a mismatched or unparseable file is
 * discarded with a warning and the shard starts clean.
 */
class FragmentWriter
{
  public:
    FragmentWriter(std::string path, std::string bench,
                   ShardPlan shard,
                   std::vector<std::string> columns,
                   const std::vector<SweepUnit> &units);

    /** True when the resumed fragment already holds unit @p index. */
    bool hasRecord(std::uint64_t index) const;

    /** Records adopted from a previous (killed) run of this shard. */
    std::size_t resumedRecords() const { return resumed_; }

    /**
     * Append one completed unit and rewrite the fragment atomically
     * (rename). A crash between units loses nothing; a crash inside
     * a unit loses only that unit. @p wallSeconds is the unit's
     * wall clock, already formatted "%.3f" (empty keeps the "0.000"
     * default).
     */
    void addRecord(std::uint64_t index, const SweepUnit &unit,
                   const std::vector<std::vector<std::string>> &rows,
                   const std::string &wallSeconds = std::string());

    /** Mark the shard's work complete and rewrite. */
    void finalize();

    const std::string &path() const { return path_; }
    const Fragment &fragment() const { return frag_; }

  private:
    void rewrite();

    std::string path_;
    Fragment frag_;
    std::size_t resumed_ = 0;
};

} // namespace drisim::farm

#endif // DRISIM_FARM_FRAGMENT_HH
