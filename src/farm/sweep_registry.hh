/**
 * @file
 * Registry of sharded sweeps: for every farm-capable bench binary,
 * the ordered list of row-producing units it will execute, with each
 * unit's stable identity key (label, canonical config string, FNV-1a
 * hash).
 *
 * The binaries themselves iterate this list (bench/bench_common.hh,
 * SweepDriver), so the registry cannot drift from what actually
 * runs; the shard-algebra tests iterate it too, proving for every
 * sweep that shard plans at any N are pairwise disjoint, covering
 * and independent of execution order (tests/farm_test.cc).
 *
 * A unit is one top-level sweep cell — one SPEC benchmark for the
 * figure sweeps, one benchmark mix for the CMP studies — not an
 * inner grid point: winner selection needs a unit's full
 * (miss-bound x size-bound) grid on one process, so the grid rides
 * along with its unit.
 */

#ifndef DRISIM_FARM_SWEEP_REGISTRY_HH
#define DRISIM_FARM_SWEEP_REGISTRY_HH

#include <string>
#include <vector>

#include "farm/fragment.hh"
#include "harness/runner.hh"

namespace drisim::farm
{

/** Number of benchmark mixes the default bench_cmp study runs. */
constexpr unsigned kDefaultCmpMixes = 2;

/**
 * Everything that decides a sweep's unit list and unit identities:
 * the final run configuration (after the binary's own tweaks, e.g.
 * bench_policies forcing 4-way) plus the binary-level knobs that
 * change the workload set.
 */
struct SweepSetup
{
    RunConfig cfg;
    /** Resolved CMP width (cmp sweeps only). */
    unsigned cores = 2;
    /** bench_policies --short workload subset. */
    bool shortRun = false;
};

/** The registered sweep names, in stable order. */
const std::vector<std::string> &sweepNames();

/**
 * The ordered unit list the named sweep executes under @p setup.
 * Order matches the binary's own loop exactly (suite order for the
 * figure sweeps, mix order for the CMP studies). Fatal on an
 * unknown name.
 */
std::vector<SweepUnit> sweepUnits(const std::string &sweep,
                                  const SweepSetup &setup);

/** Default-study mix @p m: @p cores consecutive suite benchmarks,
 *  rotating (bench_cmp's mix rule). */
std::vector<std::string> cmpMixBenches(unsigned m, unsigned cores);

/** The --coherent study's sharing mixes for @p cores cores. */
std::vector<std::vector<std::string>>
cmpCoherentMixes(unsigned cores);

/** Build a SweepUnit from a label and its identity key. */
SweepUnit makeSweepUnit(const std::string &label,
                        const sim::ConfigKey &key);

} // namespace drisim::farm

#endif // DRISIM_FARM_SWEEP_REGISTRY_HH
