/**
 * @file
 * Shard-plan algebra for the sweep farm (docs/REPRODUCTION.md,
 * Farm mode): a sweep's units are partitioned across N OS processes
 * by the stable FNV-1a hash of each unit's canonical ConfigKey
 * (sim/result_cache.hh), so the partition is
 *
 *   - disjoint and covering: every unit belongs to exactly one
 *     shard (hash % N picks it),
 *   - stable: the same configuration shards identically across
 *     runs, binaries and job-execution orders (the hash depends
 *     only on the canonical config string),
 *
 * which is what makes per-shard result fragments mergeable and
 * killed shards resumable (farm/fragment.hh, tools/sweep_merge).
 * Locked by tests/farm_test.cc.
 *
 * The user-facing spec is `K/N` with 1 <= K <= N ("shard K of N");
 * internally shards are 0-based. A default-constructed plan
 * (ofShards == 0) means "unsharded": it owns everything.
 */

#ifndef DRISIM_FARM_SHARD_PLAN_HH
#define DRISIM_FARM_SHARD_PLAN_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace drisim::sim
{
class ConfigKey;
}

namespace drisim::farm
{

/** Hard cap on the shard count (matches the executor's job cap —
 *  far beyond any sensible farm width, small enough to catch
 *  typos). */
constexpr std::uint64_t kMaxShards = 4096;

struct ShardPlan
{
    /** 0-based shard index; meaningful only when ofShards > 0. */
    unsigned shard = 0;
    /** Total shard count; 0 = unsharded (owns every unit). */
    unsigned ofShards = 0;

    /** True when this plan actually partitions (N >= 2). */
    bool active() const { return ofShards >= 2; }

    /** Does this shard own the unit with the given stable hash? */
    bool owns(std::uint64_t hash) const
    {
        return ofShards < 2 || hash % ofShards == shard;
    }

    bool owns(const sim::ConfigKey &key) const;

    /** User-facing "K/N" (1-based); "1/1" when unsharded. */
    std::string spec() const;

    bool operator==(const ShardPlan &) const = default;
};

/**
 * Parse a user-facing "K/N" shard spec. Both halves ride the strict
 * bounded parser (util/parse.hh): sign characters, junk, K == 0,
 * K > N, N == 0 and N > kMaxShards are all rejected with a message
 * naming the offending half. On success @p out holds the 0-based
 * plan.
 */
bool parseShardSpec(std::string_view text, ShardPlan &out,
                    std::string &error);

} // namespace drisim::farm

#endif // DRISIM_FARM_SHARD_PLAN_HH
