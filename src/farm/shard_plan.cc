/**
 * @file
 * Shard-spec parsing and ownership tests for the sweep farm.
 */

#include "farm/shard_plan.hh"

#include "sim/result_cache.hh"
#include "util/parse.hh"

namespace drisim::farm
{

bool
ShardPlan::owns(const sim::ConfigKey &key) const
{
    return owns(key.hash());
}

std::string
ShardPlan::spec() const
{
    if (ofShards == 0)
        return "1/1";
    return std::to_string(shard + 1) + "/" +
           std::to_string(ofShards);
}

bool
parseShardSpec(std::string_view text, ShardPlan &out,
               std::string &error)
{
    const std::size_t slash = text.find('/');
    if (slash == std::string_view::npos) {
        error = "shard spec must be K/N (e.g. 2/3), got '" +
                std::string(text) + "'";
        return false;
    }
    const std::string_view kText = text.substr(0, slash);
    const std::string_view nText = text.substr(slash + 1);
    std::uint64_t n = 0;
    if (!parsePositiveValue(nText, n, kMaxShards)) {
        error = "bad shard count '" + std::string(nText) +
                "' in shard spec '" + std::string(text) +
                "' (need 1.." + std::to_string(kMaxShards) + ")";
        return false;
    }
    std::uint64_t k = 0;
    if (!parsePositiveValue(kText, k, n)) {
        error = "bad shard index '" + std::string(kText) +
                "' in shard spec '" + std::string(text) +
                "' (need 1.." + std::to_string(n) +
                ", 1-based)";
        return false;
    }
    out.shard = static_cast<unsigned>(k - 1);
    out.ofShards = static_cast<unsigned>(n);
    return true;
}

} // namespace drisim::farm
