/**
 * @file
 * Fragment merging, the shared BENCH json serializer and the resume
 * manifest.
 */

#include "farm/merge.hh"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>

#include "sim/checkpoint.hh"
#include "util/json.hh"
#include "util/str.hh"

namespace drisim::farm
{

namespace
{

bool
samePlan(const Fragment &a, const Fragment &b)
{
    if (a.plan.size() != b.plan.size())
        return false;
    for (std::size_t i = 0; i < a.plan.size(); ++i)
        if (a.plan[i].index != b.plan[i].index ||
            a.plan[i].hash != b.plan[i].hash)
            return false;
    return true;
}

} // namespace

bool
mergeFragments(const std::vector<std::string> &paths,
               MergeResult &out, std::string &error)
{
    if (paths.empty()) {
        error = "no fragments to merge";
        return false;
    }

    std::vector<Fragment> frags;
    frags.reserve(paths.size());
    for (const std::string &p : paths) {
        Fragment f;
        if (!readFragment(p, f, error))
            return false;
        frags.push_back(std::move(f));
    }

    const Fragment &first = frags.front();
    for (const Fragment &f : frags) {
        if (f.bench != first.bench) {
            error = "fragment '" + f.sourcePath + "' is from bench '" +
                    f.bench + "', expected '" + first.bench + "'";
            return false;
        }
        if (f.columns != first.columns) {
            error = "fragment '" + f.sourcePath +
                    "' has a different column set";
            return false;
        }
        if (f.shard.ofShards != first.shard.ofShards) {
            error = "fragment '" + f.sourcePath + "' is from a " +
                    std::to_string(f.shard.ofShards) +
                    "-shard plan, expected " +
                    std::to_string(first.shard.ofShards);
            return false;
        }
        if (!samePlan(f, first)) {
            error = "fragment '" + f.sourcePath +
                    "' was planned over a different unit set";
            return false;
        }
    }

    // Plan lookup: index -> expected hash.
    std::map<std::uint64_t, std::string> planHash;
    for (const FragmentPlanEntry &e : first.plan)
        planHash[e.index] = e.hash;

    // Join records across fragments, result-cache dedup rule: same
    // hash + same config + same rows = exact duplicate (dropped);
    // same hash + anything else differing = refuse.
    std::map<std::uint64_t, const FragmentRecord *> byIndex;
    std::map<std::string, const FragmentRecord *> byHash;
    out = MergeResult{};
    for (const Fragment &f : frags) {
        for (const FragmentRecord &r : f.records) {
            const auto plan = planHash.find(r.index);
            if (plan == planHash.end()) {
                error = "fragment '" + f.sourcePath +
                        "' records unit " + std::to_string(r.index) +
                        ", which is not in the plan";
                return false;
            }
            if (plan->second != r.hash) {
                error = "fragment '" + f.sourcePath + "' unit " +
                        std::to_string(r.index) + " hash " + r.hash +
                        " contradicts the plan (" + plan->second +
                        ")";
                return false;
            }
            const auto dup = byHash.find(r.hash);
            if (dup != byHash.end()) {
                if (dup->second->config != r.config) {
                    error = "hash collision on " + r.hash +
                            ": configs differ ('" +
                            dup->second->config + "' vs '" +
                            r.config + "')";
                    return false;
                }
                if (dup->second->rows != r.rows) {
                    error = "conflicting duplicate for unit " +
                            std::to_string(r.index) + " (hash " +
                            r.hash + "): rows differ";
                    return false;
                }
                ++out.duplicates;
                continue;
            }
            byHash[r.hash] = &r;
            byIndex[r.index] = &r;
        }
    }

    out.bench = first.bench;
    out.ofShards = first.shard.ofShards;
    out.columns = first.columns;
    for (const FragmentPlanEntry &e : first.plan) {
        const auto it = byIndex.find(e.index);
        if (it == byIndex.end()) {
            MissingUnit m;
            m.index = e.index;
            m.hash = e.hash;
            m.shard = static_cast<unsigned>(
                          sim::fromHex64(e.hash) %
                          std::max(1u, first.shard.ofShards)) +
                      1;
            out.missing.push_back(std::move(m));
            continue;
        }
        for (const std::vector<std::string> &row : it->second->rows)
            out.rows.push_back(row);
    }
    return true;
}

std::string
renderBenchJson(const std::string &benchName, const ShardPlan &shard,
                double wallSeconds, unsigned workers,
                const std::vector<std::string> &columns,
                const std::vector<std::vector<std::string>> &rows)
{
    // 1-based shard provenance; 0/0 marks an unsharded (or merged)
    // report, so a complete merge reproduces the unsharded document
    // byte for byte.
    const unsigned shardNo =
        shard.active() ? shard.shard + 1 : 0;
    const unsigned ofShards = shard.active() ? shard.ofShards : 0;

    std::string out =
        strFormat("{\n  \"bench\": \"%s\",\n",
                  jsonEscape(benchName).c_str());
    out += "  \"schema_version\": 2,\n";
    out += strFormat("  \"shard\": %u,\n", shardNo);
    out += strFormat("  \"of_shards\": %u,\n", ofShards);
    out += strFormat("  \"wall_seconds\": %.3f,\n", wallSeconds);
    out += strFormat("  \"workers\": %u,\n", workers);
    out += "  \"columns\": [";
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (i)
            out += ", ";
        out += '"';
        out += jsonEscape(columns[i]);
        out += '"';
    }
    out += "],\n  \"winners\": [\n";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        out += "    {";
        const std::size_t n =
            std::min(columns.size(), rows[r].size());
        for (std::size_t i = 0; i < n; ++i) {
            if (i)
                out += ", ";
            out += '"';
            out += jsonEscape(columns[i]);
            out += "\": \"";
            out += jsonEscape(rows[r][i]);
            out += '"';
        }
        out += '}';
        if (r + 1 < rows.size())
            out += ',';
        out += '\n';
    }
    out += "  ]\n}\n";
    return out;
}

std::string
renderResumeManifest(const std::string &bench, unsigned ofShards,
                     const std::vector<MissingUnit> &missing)
{
    std::string out = "{\"format\":\"drisim-resume-manifest\","
                      "\"version\":1,\n\"bench\":\"";
    out += jsonEscape(bench);
    out += "\",\"of_shards\":";
    out += std::to_string(ofShards);
    out += ",\n\"missing\":[";
    for (std::size_t i = 0; i < missing.size(); ++i) {
        if (i)
            out += ',';
        out += "\n{\"index\":";
        out += std::to_string(missing[i].index);
        out += ",\"hash\":\"";
        out += jsonEscape(missing[i].hash);
        out += "\",\"shard\":";
        out += std::to_string(missing[i].shard);
        out += '}';
    }
    out += "]}\n";
    return out;
}

std::vector<unsigned>
ResumeManifest::shards() const
{
    std::set<unsigned> s;
    for (const MissingUnit &m : missing)
        s.insert(m.shard);
    return {s.begin(), s.end()};
}

bool
parseResumeManifest(const std::string &path, ResumeManifest &out,
                    std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot read manifest '" + path + "'";
        return false;
    }
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());

    ResumeManifest m;
    JsonParser p{text};
    p.consume('{');
    if (p.parseString() != "format" || !p.consume(':') ||
        p.parseString() != "drisim-resume-manifest" || !p.ok) {
        error = "'" + path + "' is not a drisim resume manifest";
        return false;
    }
    p.consume(',');
    if (p.parseString() != "version" || !p.ok)
        p.ok = false;
    p.consume(':');
    p.parseUInt();
    p.consume(',');
    if (p.parseString() != "bench" || !p.ok)
        p.ok = false;
    p.consume(':');
    m.bench = p.parseString();
    p.consume(',');
    if (p.parseString() != "of_shards" || !p.ok)
        p.ok = false;
    p.consume(':');
    m.ofShards = static_cast<unsigned>(p.parseUInt());
    p.consume(',');
    if (p.parseString() != "missing" || !p.ok)
        p.ok = false;
    p.consume(':');
    p.consume('[');
    if (p.ok && !p.peek(']')) {
        do {
            MissingUnit u;
            p.consume('{');
            if (p.parseString() != "index" || !p.ok)
                break;
            p.consume(':');
            u.index = p.parseUInt();
            p.consume(',');
            if (p.parseString() != "hash" || !p.ok)
                break;
            p.consume(':');
            u.hash = p.parseString();
            p.consume(',');
            if (p.parseString() != "shard" || !p.ok)
                break;
            p.consume(':');
            u.shard = static_cast<unsigned>(p.parseUInt());
            p.consume('}');
            if (!p.ok)
                break;
            m.missing.push_back(std::move(u));
        } while (p.peek(',') && p.consume(','));
    }
    p.consume(']');
    p.consume('}');
    if (!p.ok) {
        error = "'" + path + "': malformed resume manifest";
        return false;
    }
    out = std::move(m);
    return true;
}

} // namespace drisim::farm
