/**
 * @file
 * Fragment serialization, parsing and the rename-atomic writer.
 */

#include "farm/fragment.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "sim/checkpoint.hh"
#include "util/json.hh"

namespace drisim::farm
{

namespace
{

/** Consume `"name":` (a fixed-order field of our own format). */
bool
expectKey(JsonParser &p, const char *name)
{
    if (p.parseString() != name || !p.ok)
        p.ok = false;
    return p.ok && p.consume(':');
}

} // namespace

std::string
renderFragment(const Fragment &f)
{
    std::string out = "{\"format\":\"drisim-sweep-fragment\","
                      "\"version\":";
    out += std::to_string(f.schemaVersion);
    out += ",\n\"bench\":\"";
    out += jsonEscape(f.bench);
    out += "\",\"shard\":";
    out += std::to_string(f.shard.shard);
    out += ",\"of_shards\":";
    out += std::to_string(f.shard.ofShards);
    out += ",\n\"columns\":[";
    for (std::size_t i = 0; i < f.columns.size(); ++i) {
        if (i)
            out += ',';
        out += '"';
        out += jsonEscape(f.columns[i]);
        out += '"';
    }
    out += "],\n\"plan\":[";
    for (std::size_t i = 0; i < f.plan.size(); ++i) {
        if (i)
            out += ',';
        out += "\n{\"index\":";
        out += std::to_string(f.plan[i].index);
        out += ",\"hash\":\"";
        out += jsonEscape(f.plan[i].hash);
        out += "\"}";
    }
    out += "],\n\"records\":[";
    for (std::size_t i = 0; i < f.records.size(); ++i) {
        const FragmentRecord &r = f.records[i];
        if (i)
            out += ',';
        out += "\n{\"index\":";
        out += std::to_string(r.index);
        out += ",\"hash\":\"";
        out += jsonEscape(r.hash);
        out += "\",\"config\":\"";
        out += jsonEscape(r.config);
        out += "\",\"wall_seconds\":\"";
        out += jsonEscape(r.wallSeconds);
        out += "\",\"rows\":[";
        for (std::size_t j = 0; j < r.rows.size(); ++j) {
            if (j)
                out += ',';
            out += '[';
            for (std::size_t c = 0; c < r.rows[j].size(); ++c) {
                if (c)
                    out += ',';
                out += '"';
                out += jsonEscape(r.rows[j][c]);
                out += '"';
            }
            out += ']';
        }
        out += "]}";
    }
    out += "],\n\"complete\":";
    out += f.complete ? "true" : "false";
    out += "}\n";
    return out;
}

bool
readFragment(const std::string &path, Fragment &out,
             std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot read fragment '" + path + "'";
        return false;
    }
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());

    Fragment f;
    f.sourcePath = path;
    JsonParser p{text};
    p.consume('{');
    if (!expectKey(p, "format") ||
        p.parseString() != "drisim-sweep-fragment" || !p.ok) {
        error = "'" + path + "' is not a drisim sweep fragment";
        return false;
    }
    p.consume(',');
    if (!expectKey(p, "version")) {
        error = "'" + path + "': missing version";
        return false;
    }
    f.schemaVersion = static_cast<unsigned>(p.parseUInt());
    p.consume(',');
    if (!expectKey(p, "bench")) {
        error = "'" + path + "': missing bench";
        return false;
    }
    f.bench = p.parseString();
    p.consume(',');
    if (!expectKey(p, "shard")) {
        error = "'" + path + "': missing shard";
        return false;
    }
    f.shard.shard = static_cast<unsigned>(p.parseUInt());
    p.consume(',');
    if (!expectKey(p, "of_shards")) {
        error = "'" + path + "': missing of_shards";
        return false;
    }
    f.shard.ofShards = static_cast<unsigned>(p.parseUInt());
    p.consume(',');
    if (!expectKey(p, "columns")) {
        error = "'" + path + "': missing columns";
        return false;
    }
    f.columns = p.parseStringArray();
    p.consume(',');
    if (!expectKey(p, "plan")) {
        error = "'" + path + "': missing plan";
        return false;
    }
    p.consume('[');
    if (p.ok && !p.peek(']')) {
        do {
            FragmentPlanEntry e;
            p.consume('{');
            if (!expectKey(p, "index"))
                break;
            e.index = p.parseUInt();
            p.consume(',');
            if (!expectKey(p, "hash"))
                break;
            e.hash = p.parseString();
            p.consume('}');
            if (!p.ok)
                break;
            f.plan.push_back(std::move(e));
        } while (p.peek(',') && p.consume(','));
    }
    p.consume(']');
    p.consume(',');
    if (!expectKey(p, "records")) {
        error = "'" + path + "': missing records";
        return false;
    }
    p.consume('[');
    if (p.ok && !p.peek(']')) {
        do {
            FragmentRecord r;
            p.consume('{');
            if (!expectKey(p, "index"))
                break;
            r.index = p.parseUInt();
            p.consume(',');
            if (!expectKey(p, "hash"))
                break;
            r.hash = p.parseString();
            p.consume(',');
            if (!expectKey(p, "config"))
                break;
            r.config = p.parseString();
            p.consume(',');
            if (!expectKey(p, "wall_seconds"))
                break;
            r.wallSeconds = p.parseString();
            p.consume(',');
            if (!expectKey(p, "rows"))
                break;
            r.rows = p.parseStringArrayArray();
            p.consume('}');
            if (!p.ok)
                break;
            f.records.push_back(std::move(r));
        } while (p.peek(',') && p.consume(','));
    }
    p.consume(']');
    p.consume(',');
    if (!expectKey(p, "complete")) {
        error = "'" + path + "': missing complete flag";
        return false;
    }
    f.complete = p.parseBool();
    p.consume('}');
    if (!p.ok) {
        error = "'" + path + "': malformed fragment";
        return false;
    }
    out = std::move(f);
    return true;
}

bool
writeFileAtomic(const std::string &path,
                const std::string &contents, std::string &error)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            error = "cannot write '" + tmp + "'";
            return false;
        }
        out << contents;
        if (!out) {
            error = "short write to '" + tmp + "'";
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        error = "cannot rename '" + tmp + "' to '" + path +
                "': " + ec.message();
        return false;
    }
    return true;
}

FragmentWriter::FragmentWriter(std::string path, std::string bench,
                               ShardPlan shard,
                               std::vector<std::string> columns,
                               const std::vector<SweepUnit> &units)
    : path_(std::move(path))
{
    frag_.bench = std::move(bench);
    frag_.shard = shard;
    frag_.columns = std::move(columns);
    frag_.plan.reserve(units.size());
    for (std::size_t i = 0; i < units.size(); ++i)
        frag_.plan.push_back({i, units[i].hashHex});

    std::error_code ec;
    if (!std::filesystem::exists(path_, ec))
        return;

    Fragment old;
    std::string error;
    if (!readFragment(path_, old, error)) {
        std::fprintf(stderr,
                     "[farm] discarding stale fragment: %s\n",
                     error.c_str());
        return;
    }
    const bool samePlan =
        old.bench == frag_.bench && old.shard == frag_.shard &&
        old.columns == frag_.columns &&
        [&] {
            if (old.plan.size() != frag_.plan.size())
                return false;
            for (std::size_t i = 0; i < old.plan.size(); ++i)
                if (old.plan[i].index != frag_.plan[i].index ||
                    old.plan[i].hash != frag_.plan[i].hash)
                    return false;
            return true;
        }();
    if (!samePlan) {
        std::fprintf(stderr,
                     "[farm] fragment '%s' belongs to a different "
                     "sweep/shard; starting clean\n",
                     path_.c_str());
        return;
    }
    frag_.records = std::move(old.records);
    resumed_ = frag_.records.size();
}

bool
FragmentWriter::hasRecord(std::uint64_t index) const
{
    for (const FragmentRecord &r : frag_.records)
        if (r.index == index)
            return true;
    return false;
}

void
FragmentWriter::addRecord(
    std::uint64_t index, const SweepUnit &unit,
    const std::vector<std::vector<std::string>> &rows,
    const std::string &wallSeconds)
{
    FragmentRecord r;
    r.index = index;
    r.hash = unit.hashHex;
    r.config = unit.config;
    if (!wallSeconds.empty())
        r.wallSeconds = wallSeconds;
    r.rows = rows;
    frag_.records.push_back(std::move(r));
    rewrite();
}

void
FragmentWriter::finalize()
{
    frag_.complete = true;
    rewrite();
}

void
FragmentWriter::rewrite()
{
    std::string error;
    if (!writeFileAtomic(path_, renderFragment(frag_), error))
        std::fprintf(stderr, "[farm] %s\n", error.c_str());
}

} // namespace drisim::farm
