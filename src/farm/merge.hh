/**
 * @file
 * Joining per-shard fragments back into the single merged BENCH
 * report (tools/sweep_merge), plus the resume manifest written when
 * units are missing.
 *
 * Dedup follows the result-cache rule (sim/result_cache.hh): two
 * records joining on the same hash must carry the same full
 * canonical config string — an exact duplicate is dropped, a hash
 * collision with differing configs is a hard error, never a silent
 * pick. The merged document is rendered by the same serializer the
 * unsharded binaries use (renderBenchJson), so a complete merge is
 * byte-identical to a single-process --json run (locked by the CI
 * farm leg).
 */

#ifndef DRISIM_FARM_MERGE_HH
#define DRISIM_FARM_MERGE_HH

#include <string>
#include <vector>

#include "farm/fragment.hh"

namespace drisim::farm
{

/** A planned unit no fragment delivered. */
struct MissingUnit
{
    std::uint64_t index = 0;
    std::string hash;
    /** 1-based owner shard (hash % of_shards + 1). */
    unsigned shard = 0;
};

/** Outcome of merging a fragment set. */
struct MergeResult
{
    std::string bench;
    unsigned ofShards = 0;
    std::vector<std::string> columns;
    /** Report rows of every delivered unit, in plan order. */
    std::vector<std::vector<std::string>> rows;
    /** Plan units with no record in any fragment. */
    std::vector<MissingUnit> missing;
    /** Exact duplicate records dropped (overlapping re-runs). */
    std::size_t duplicates = 0;
};

/**
 * Merge the fragments at @p paths. Fails (false + @p error) on an
 * unreadable/malformed fragment, on fragments from different
 * sweeps (bench, columns, shard count or plan mismatch), on a
 * record contradicting the plan, and on a hash collision (same
 * hash, different config). Holes are NOT an error here — they come
 * back in MergeResult::missing for the caller to turn into a
 * resume manifest.
 */
bool mergeFragments(const std::vector<std::string> &paths,
                    MergeResult &out, std::string &error);

/**
 * The canonical BENCH_*.json serialization, shared by the unsharded
 * binaries (bench_common writeJsonReport) and tools/sweep_merge:
 * schema_version 2 with shard/of_shards provenance (1-based shard;
 * both 0 for an unsharded or merged report).
 */
std::string renderBenchJson(
    const std::string &benchName, const ShardPlan &shard,
    double wallSeconds, unsigned workers,
    const std::vector<std::string> &columns,
    const std::vector<std::vector<std::string>> &rows);

/** Serialize a resume manifest for @p missing units. */
std::string renderResumeManifest(
    const std::string &bench, unsigned ofShards,
    const std::vector<MissingUnit> &missing);

/** Parsed resume manifest (tools/farm_runner --resume). */
struct ResumeManifest
{
    std::string bench;
    unsigned ofShards = 0;
    std::vector<MissingUnit> missing;

    /** The distinct 1-based shards owning missing units, sorted. */
    std::vector<unsigned> shards() const;
};

bool parseResumeManifest(const std::string &path, ResumeManifest &out,
                         std::string &error);

} // namespace drisim::farm

#endif // DRISIM_FARM_MERGE_HH
