/**
 * @file
 * Unit enumeration for every farm-capable sweep.
 */

#include "farm/sweep_registry.hh"

#include "harness/multilevel.hh"
#include "util/logging.hh"
#include "workload/spec_suite.hh"

namespace drisim::farm
{

SweepUnit
makeSweepUnit(const std::string &label, const sim::ConfigKey &key)
{
    SweepUnit u;
    u.label = label;
    u.config = key.canonical();
    u.hash = key.hash();
    u.hashHex = key.hashHex();
    return u;
}

const std::vector<std::string> &
sweepNames()
{
    static const std::vector<std::string> names{
        "figure3",    "figure4",  "figure5",
        "figure6",    "section56", "multilevel",
        "policies",   "cmp",      "cmp_coherent"};
    return names;
}

std::vector<std::string>
cmpMixBenches(unsigned m, unsigned cores)
{
    const auto &suite = specSuite();
    std::vector<std::string> names;
    names.reserve(cores);
    for (unsigned k = 0; k < cores; ++k)
        names.push_back(
            suite[(static_cast<std::size_t>(m) * cores + k) %
                  suite.size()]
                .name);
    return names;
}

std::vector<std::vector<std::string>>
cmpCoherentMixes(unsigned cores)
{
    std::vector<std::vector<std::string>> mixes;
    mixes.emplace_back(cores, "shared_image");
    std::vector<std::string> pc;
    for (unsigned k = 0; k < cores; ++k)
        pc.push_back(k % 2 == 0 ? "producer" : "consumer");
    mixes.push_back(std::move(pc));
    return mixes;
}

namespace
{

/** One unit per suite benchmark, keyed on the conventional-run
 *  identity plus the sweep name (the per-benchmark sweeps). */
std::vector<SweepUnit>
suiteUnits(const std::string &sweep, const SweepSetup &setup,
           bool honourShort)
{
    std::vector<SweepUnit> units;
    for (const BenchmarkInfo &b : specSuite()) {
        if (honourShort && setup.shortRun && b.name != "compress" &&
            b.name != "li")
            continue;
        sim::ConfigKey key = runKeyConventional(b, setup.cfg);
        key.add("sweep", std::string_view(sweep));
        units.push_back(makeSweepUnit(b.name, key));
    }
    return units;
}

/** The conventional-baseline CmpConfig a mix runs (identity only —
 *  the leakage-managed build derives from it deterministically). */
CmpConfig
mixCmpConfig(const std::vector<std::string> &benches, unsigned cores,
             bool coherent)
{
    CmpConfig cmp;
    cmp.cores = cores;
    cmp.coherence.enabled = coherent;
    for (const std::string &b : benches) {
        CmpCoreConfig core;
        core.bench = b;
        cmp.coreConfigs.push_back(std::move(core));
    }
    return cmp;
}

std::vector<SweepUnit>
cmpUnits(const std::string &sweep, const SweepSetup &setup,
         bool coherent)
{
    std::vector<std::vector<std::string>> mixes;
    if (coherent) {
        mixes = cmpCoherentMixes(setup.cores);
    } else {
        for (unsigned m = 0; m < kDefaultCmpMixes; ++m)
            mixes.push_back(cmpMixBenches(m, setup.cores));
    }
    std::vector<SweepUnit> units;
    for (const std::vector<std::string> &benches : mixes) {
        sim::ConfigKey key = runKeyCmp(
            setup.cfg, mixCmpConfig(benches, setup.cores, coherent),
            benches[0]);
        key.add("sweep", std::string_view(sweep));
        units.push_back(makeSweepUnit(cmpMixName(benches), key));
    }
    return units;
}

} // namespace

std::vector<SweepUnit>
sweepUnits(const std::string &sweep, const SweepSetup &setup)
{
    if (sweep == "figure3" || sweep == "figure5" ||
        sweep == "figure6" || sweep == "section56" ||
        sweep == "multilevel")
        return suiteUnits(sweep, setup, /*honourShort=*/false);
    // figure4 and policies honour --short: their binaries filter
    // the same way, so plan indices keep matching the loop (the CI
    // obs smoke runs bench_figure4 --short).
    if (sweep == "figure4" || sweep == "policies")
        return suiteUnits(sweep, setup, /*honourShort=*/true);
    if (sweep == "cmp")
        return cmpUnits(sweep, setup, /*coherent=*/false);
    if (sweep == "cmp_coherent")
        return cmpUnits(sweep, setup, /*coherent=*/true);
    drisim_fatal("unknown sweep '%s'", sweep.c_str());
}

} // namespace drisim::farm
