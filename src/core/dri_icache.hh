/**
 * @file
 * The Dynamically ResIzable instruction cache (paper Section 2).
 *
 * Architecturally a direct-mapped or set-associative i-cache whose
 * set count shrinks/grows by the divisibility factor at sense-
 * interval boundaries, under miss-bound / size-bound control. Sets
 * above the current size are gated off (gated-Vdd): they keep no
 * state and leak (nearly) nothing.
 *
 * All of that machinery lives in the level-agnostic ResizableCache
 * base (mem/resizable_cache.hh); this class adds the i-cache
 * specifics. Lookup correctness across sizes comes from maintaining
 * the tag bits required by the *smallest* size at all times
 * (resizing tag bits). Upsizing can leave stale aliases of a block
 * in low-numbered sets; because the i-stream is read-only these are
 * harmless (Section 2.2, ResizePolicy::icache()), but
 * invalidateBlock() must sweep all candidate alias sets (page unmap
 * / self-modifying code paths).
 */

#ifndef DRISIM_CORE_DRI_ICACHE_HH
#define DRISIM_CORE_DRI_ICACHE_HH

#include <cstdint>

#include "mem/resizable_cache.hh"

namespace drisim
{

/** The DRI i-cache. Drop-in replacement for a conventional L1I. */
class DriICache : public ResizableCache
{
  public:
    DriICache(const DriParams &params, MemoryLevel *below,
              stats::StatGroup *parent);

    /** Fetch access (loads/stores are rejected: i-cache only). */
    AccessResult access(Addr addr, AccessType type) override;
    AccessResult accessAt(Addr addr, AccessType type,
                          Cycles now) override;

    /**
     * Invalidate every alias of the block containing @p addr
     * (all active sets congruent to the block's minimum-size index).
     */
    void invalidateBlock(Addr addr);

  private:
    stats::Scalar aliasInvalidations_;
};

} // namespace drisim

#endif // DRISIM_CORE_DRI_ICACHE_HH
