/**
 * @file
 * The Dynamically ResIzable instruction cache (paper Section 2).
 *
 * Architecturally a direct-mapped or set-associative i-cache whose
 * set count shrinks/grows by the divisibility factor at sense-
 * interval boundaries, under miss-bound / size-bound control. Sets
 * above the current size are gated off (gated-Vdd): they keep no
 * state and leak (nearly) nothing.
 *
 * Lookup correctness across sizes comes from maintaining the tag
 * bits required by the *smallest* size at all times (resizing tag
 * bits). Upsizing can leave stale aliases of a block in
 * low-numbered sets; because the i-stream is read-only these are
 * harmless (Section 2.2), but invalidateBlock() must sweep all
 * candidate alias sets (page unmap / self-modifying code paths).
 */

#ifndef DRISIM_CORE_DRI_ICACHE_HH
#define DRISIM_CORE_DRI_ICACHE_HH

#include <cstdint>

#include "mem/memory.hh"
#include "mem/tag_store.hh"
#include "stats/stats.hh"
#include "core/dri_params.hh"
#include "core/resize_controller.hh"
#include "core/size_mask.hh"

namespace drisim
{

/** The DRI i-cache. Drop-in replacement for a conventional L1I. */
class DriICache : public MemoryLevel
{
  public:
    DriICache(const DriParams &params, MemoryLevel *below,
              stats::StatGroup *parent);

    /** Fetch access (loads/stores are rejected: i-cache only). */
    AccessResult access(Addr addr, AccessType type) override;

    /**
     * Account @p n retired instructions; at sense-interval
     * boundaries runs the resize decision. Returns true if the
     * cache resized.
     */
    bool retireInstructions(InstCount n);

    /** Fraction of sets currently powered. */
    double activeFraction() const override;

    /** Current capacity in bytes. */
    std::uint64_t currentSizeBytes() const;

    std::uint64_t currentSets() const { return mask_.numSets(); }

    /**
     * Invalidate every alias of the block containing @p addr
     * (all active sets congruent to the block's minimum-size index).
     */
    void invalidateBlock(Addr addr);

    /** Full flush (i-cache flush on page unmap etc.). */
    void invalidateAll() override;

    const DriParams &params() const { return params_; }
    const SizeMask &sizeMask() const { return mask_; }
    const ResizeController &controller() const { return controller_; }

    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    double missRate() const;

    std::uint64_t upsizes() const { return upsizes_.value(); }
    std::uint64_t downsizes() const { return downsizes_.value(); }

    /** Valid blocks destroyed by gating their sets off. */
    std::uint64_t blocksLost() const { return blocksLost_.value(); }

    /**
     * Time-integral bookkeeping: the run loop adds the cycles spent
     * since the last call; the integral of the active fraction over
     * cycles gives the average active size (paper's "average cache
     * size ... averaged over the benchmark execution time").
     */
    void integrateCycles(Cycles delta);

    /** Integral of activeSets over cycles (set-cycles). */
    double activeSetCycles() const { return activeSetCycles_; }

    /** Cycles integrated so far. */
    Cycles integratedCycles() const { return integratedCycles_; }

    /** Average active fraction over the integrated run. */
    double averageActiveFraction() const;

    /** Number of sets whose supply is currently gated off. */
    std::uint64_t gatedSets() const
    {
        return mask_.maxSets() - mask_.numSets();
    }

    void resetStats();

  private:
    void applyDecision(ResizeDecision decision);
    void resizeTo(std::uint64_t newSets);

    DriParams params_;
    MemoryLevel *below_;
    SizeMask mask_;
    ResizeController controller_;
    TagStore store_;

    double activeSetCycles_ = 0.0;
    Cycles integratedCycles_ = 0;

    stats::StatGroup group_;
    stats::Scalar accesses_;
    stats::Scalar misses_;
    stats::Scalar upsizes_;
    stats::Scalar downsizes_;
    stats::Scalar holds_;
    stats::Scalar blocksLost_;
    stats::Scalar aliasInvalidations_;
};

} // namespace drisim

#endif // DRISIM_CORE_DRI_ICACHE_HH
