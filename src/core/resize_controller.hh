/**
 * @file
 * The DRI i-cache adaptive controller (Figure 1, Section 2.1).
 *
 * Counts misses within a sense interval; at each interval boundary
 * compares against the miss-bound and decides to upsize, downsize or
 * hold. A saturating counter detects repeated oscillation between
 * two adjacent sizes; on saturation it disables downsizing for a
 * fixed number of intervals ("throttling").
 */

#ifndef DRISIM_CORE_RESIZE_CONTROLLER_HH
#define DRISIM_CORE_RESIZE_CONTROLLER_HH

#include <cstdint>

#include "util/types.hh"
#include "core/dri_params.hh"

namespace drisim::sim
{
class CheckpointWriter;
class CheckpointReader;
} // namespace drisim::sim

namespace drisim
{

/** What the controller decided at an interval boundary. */
enum class ResizeDecision { Hold, Upsize, Downsize };

/** Miss-bound / throttle finite-state machine. */
class ResizeController
{
  public:
    explicit ResizeController(const DriParams &params);

    /** Record one (or more) cache misses. */
    void recordMiss(std::uint64_t count = 1) { missCount_ += count; }

    /**
     * Record @p n retired instructions. Returns true each time a
     * sense-interval boundary is crossed (the caller should then
     * call endInterval()).
     */
    bool recordInstructions(InstCount n);

    /**
     * Close the interval: compare the miss counter with the
     * miss-bound and emit a decision. Resets the miss counter.
     *
     * @param atMin whether the cache is already at the size-bound
     * @param atMax whether the cache is at full size
     */
    ResizeDecision endInterval(bool atMin, bool atMax);

    /**
     * Tell the controller what actually happened (a Downsize
     * decision may be vetoed by the size-bound). Drives the
     * oscillation detector.
     */
    void noteApplied(ResizeDecision applied);

    std::uint64_t missCount() const { return missCount_; }
    std::uint64_t intervals() const { return intervals_; }
    unsigned throttleCounter() const { return throttleCounter_; }
    bool downsizeFrozen() const { return freezeRemaining_ > 0; }
    std::uint64_t throttleEvents() const { return throttleEvents_; }

    /** Serialize the FSM state (sim/checkpoint.hh). */
    void snapshotTo(sim::CheckpointWriter &w) const;
    void restoreFrom(sim::CheckpointReader &r);

  private:
    DriParams params_;
    std::uint64_t missCount_ = 0;
    InstCount instrsIntoInterval_ = 0;
    std::uint64_t intervals_ = 0;

    /** Saturating oscillation counter and its ceiling/trigger. */
    unsigned throttleCounter_ = 0;
    unsigned throttleMax_;
    unsigned throttleTrigger_;
    unsigned freezeRemaining_ = 0;
    std::uint64_t throttleEvents_ = 0;

    ResizeDecision lastApplied_ = ResizeDecision::Hold;
};

} // namespace drisim

#endif // DRISIM_CORE_RESIZE_CONTROLLER_HH
