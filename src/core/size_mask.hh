/**
 * @file
 * The DRI i-cache size mask (Figure 1).
 *
 * A conventional cache uses a fixed group of index bits; the DRI
 * i-cache ANDs the index with a resizable mask. Downsizing shifts
 * the mask right (fewer index bits, removing the highest-numbered
 * sets in power-of-two groups); upsizing shifts it left.
 */

#ifndef DRISIM_CORE_SIZE_MASK_HH
#define DRISIM_CORE_SIZE_MASK_HH

#include <cstdint>

#include "util/types.hh"
#include "core/dri_params.hh"

namespace drisim
{

/** Index-mask logic for one DRI i-cache. */
class SizeMask
{
  public:
    /**
     * @param offsetBits   log2(block size)
     * @param minIndexBits index bits at the size-bound
     * @param maxIndexBits index bits at full size
     * Starts at full size.
     */
    SizeMask(unsigned offsetBits, unsigned minIndexBits,
             unsigned maxIndexBits);

    unsigned offsetBits() const { return offsetBits_; }
    unsigned minIndexBits() const { return minIndexBits_; }
    unsigned maxIndexBits() const { return maxIndexBits_; }
    unsigned indexBits() const { return indexBits_; }

    /** Current number of selectable sets. */
    std::uint64_t numSets() const
    {
        return std::uint64_t{1} << indexBits_;
    }

    std::uint64_t minSets() const
    {
        return std::uint64_t{1} << minIndexBits_;
    }

    std::uint64_t maxSets() const
    {
        return std::uint64_t{1} << maxIndexBits_;
    }

    /** The raw mask applied to the block address. */
    std::uint64_t mask() const { return numSets() - 1; }

    /** Set index for @p addr at the current size. */
    std::uint64_t indexFor(Addr addr) const
    {
        return (addr >> offsetBits_) & mask();
    }

    /** Set index for @p addr at the minimum size (alias scanning). */
    std::uint64_t minIndexFor(Addr addr) const
    {
        return (addr >> offsetBits_) & (minSets() - 1);
    }

    /**
     * Shrink by @p factor (power of two), clamped at the minimum.
     * @return true if the size changed
     */
    bool shrink(unsigned factor);

    /** Grow by @p factor (power of two), clamped at the maximum. */
    bool grow(unsigned factor);

    /** Jump to an absolute set count (power of two, in range). */
    void setNumSets(std::uint64_t sets);

    bool atMinimum() const { return indexBits_ == minIndexBits_; }
    bool atMaximum() const { return indexBits_ == maxIndexBits_; }

  private:
    unsigned offsetBits_;
    unsigned minIndexBits_;
    unsigned maxIndexBits_;
    unsigned indexBits_;
};

/**
 * Build the mask implied by a (validated) DRI parameter set:
 * offset bits from the block size, index range from size-bound and
 * full size divided by the set footprint.
 */
SizeMask makeSizeMask(const DriParams &params);

} // namespace drisim

#endif // DRISIM_CORE_SIZE_MASK_HH
