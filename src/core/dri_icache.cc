/**
 * @file
 * DRI i-cache: masked indexing, resizing-tag lookup, sense-interval
 * resize steps, and alias-sweeping invalidation.
 */

#include "core/dri_icache.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace drisim
{

unsigned
DriParams::resizingTagBits() const
{
    return exactLog2(sizeBytes / sizeBoundBytes);
}

void
DriParams::validate() const
{
    if (!isPowerOf2(sizeBytes) || !isPowerOf2(blockBytes) ||
        !isPowerOf2(sizeBoundBytes))
        drisim_fatal("DRI sizes must be powers of two");
    if (sizeBoundBytes > sizeBytes)
        drisim_fatal("size-bound exceeds the cache size");
    if (sizeBoundBytes <
        static_cast<std::uint64_t>(blockBytes) * assoc)
        drisim_fatal("size-bound smaller than one set");
    if (!isPowerOf2(divisibility) || divisibility < 2)
        drisim_fatal("divisibility must be a power of two >= 2");
    if (senseInterval == 0)
        drisim_fatal("sense interval must be positive");
}

DriICache::DriICache(const DriParams &params, MemoryLevel *below,
                     stats::StatGroup *parent)
    : params_(params),
      below_(below),
      mask_(makeSizeMask(params)),
      controller_(params),
      store_(mask_.maxSets(), params.assoc, params.repl),
      group_(parent, "dri_icache"),
      accesses_(&group_, "accesses", "instruction fetch accesses"),
      misses_(&group_, "misses", "fetch misses"),
      upsizes_(&group_, "upsizes", "interval decisions: upsize"),
      downsizes_(&group_, "downsizes", "interval decisions: downsize"),
      holds_(&group_, "holds", "interval decisions: hold"),
      blocksLost_(&group_, "blocks_lost",
                  "valid blocks destroyed by gating sets off"),
      aliasInvalidations_(&group_, "alias_invalidations",
                          "blocks removed by invalidateBlock sweeps")
{
}

AccessResult
DriICache::access(Addr addr, AccessType type)
{
    drisim_assert(type == AccessType::InstFetch,
                  "DRI i-cache only serves instruction fetches");
    ++accesses_;

    const Addr ba = addr >> mask_.offsetBits();
    const std::uint64_t set = ba & mask_.mask();

    int way = store_.findWay(set, ba);
    if (way != TagStore::kNoWay) {
        store_.touch(set, static_cast<unsigned>(way));
        return {true, params_.hitLatency};
    }

    ++misses_;
    controller_.recordMiss();
    Cycles latency = params_.hitLatency;
    if (below_)
        latency += below_->access(ba << mask_.offsetBits(),
                                  AccessType::InstFetch)
                       .latency;
    store_.insert(set, ba);
    return {false, latency};
}

bool
DriICache::retireInstructions(InstCount n)
{
    bool resized = false;
    // A large n can cross several interval boundaries; honour each.
    while (controller_.recordInstructions(n)) {
        n = 0;
        ResizeDecision d = controller_.endInterval(mask_.atMinimum(),
                                                   mask_.atMaximum());
        std::uint64_t before = mask_.numSets();
        applyDecision(d);
        resized |= mask_.numSets() != before;
    }
    return resized;
}

void
DriICache::applyDecision(ResizeDecision decision)
{
    const std::uint64_t sets = mask_.numSets();
    switch (decision) {
      case ResizeDecision::Hold:
        ++holds_;
        controller_.noteApplied(ResizeDecision::Hold);
        return;
      case ResizeDecision::Downsize: {
        std::uint64_t target = sets / params_.divisibility;
        if (target < mask_.minSets())
            target = mask_.minSets();
        if (target == sets) {
            ++holds_;
            controller_.noteApplied(ResizeDecision::Hold);
            return;
        }
        ++downsizes_;
        resizeTo(target);
        controller_.noteApplied(ResizeDecision::Downsize);
        return;
      }
      case ResizeDecision::Upsize: {
        std::uint64_t target = sets * params_.divisibility;
        if (target > mask_.maxSets())
            target = mask_.maxSets();
        if (target == sets) {
            ++holds_;
            controller_.noteApplied(ResizeDecision::Hold);
            return;
        }
        ++upsizes_;
        resizeTo(target);
        controller_.noteApplied(ResizeDecision::Upsize);
        return;
      }
    }
}

void
DriICache::resizeTo(std::uint64_t newSets)
{
    const std::uint64_t old_sets = mask_.numSets();
    if (newSets < old_sets) {
        // Gating the supply destroys the state of the disabled sets.
        for (std::uint64_t s = newSets; s < old_sets; ++s) {
            for (unsigned w = 0; w < store_.assoc(); ++w) {
                if (store_.set(s)[w].valid)
                    ++blocksLost_;
            }
            store_.invalidateSet(s);
        }
    }
    // Newly enabled sets were gated and are already invalid.
    mask_.setNumSets(newSets);
}

double
DriICache::activeFraction() const
{
    return static_cast<double>(mask_.numSets()) /
           static_cast<double>(mask_.maxSets());
}

std::uint64_t
DriICache::currentSizeBytes() const
{
    return mask_.numSets() *
           static_cast<std::uint64_t>(params_.blockBytes) *
           params_.assoc;
}

void
DriICache::invalidateBlock(Addr addr)
{
    const Addr ba = addr >> mask_.offsetBits();
    const std::uint64_t min_sets = mask_.minSets();
    const std::uint64_t congruent = ba & (min_sets - 1);
    for (std::uint64_t s = congruent; s < mask_.numSets();
         s += min_sets) {
        int way = store_.findWay(s, ba);
        if (way != TagStore::kNoWay) {
            store_.invalidate(s, static_cast<unsigned>(way));
            ++aliasInvalidations_;
        }
    }
}

void
DriICache::invalidateAll()
{
    store_.invalidateAll();
}

double
DriICache::missRate() const
{
    return accesses_.value() == 0
               ? 0.0
               : static_cast<double>(misses_.value()) /
                     static_cast<double>(accesses_.value());
}

void
DriICache::integrateCycles(Cycles delta)
{
    activeSetCycles_ += static_cast<double>(mask_.numSets()) *
                        static_cast<double>(delta);
    integratedCycles_ += delta;
}

double
DriICache::averageActiveFraction() const
{
    if (integratedCycles_ == 0)
        return activeFraction();
    return activeSetCycles_ /
           (static_cast<double>(mask_.maxSets()) *
            static_cast<double>(integratedCycles_));
}

void
DriICache::resetStats()
{
    group_.resetAll();
    activeSetCycles_ = 0.0;
    integratedCycles_ = 0;
}

} // namespace drisim
