/**
 * @file
 * DRI i-cache: fetch-only access over the shared resize machinery,
 * plus alias-sweeping invalidation.
 */

#include "core/dri_icache.hh"

#include "util/logging.hh"

namespace drisim
{

DriICache::DriICache(const DriParams &params, MemoryLevel *below,
                     stats::StatGroup *parent)
    : ResizableCache(params, ResizePolicy::icache(), below, parent,
                     "dri_icache"),
      aliasInvalidations_(&group_, "alias_invalidations",
                          "blocks removed by invalidateBlock sweeps")
{
}

AccessResult
DriICache::access(Addr addr, AccessType type)
{
    drisim_assert(type == AccessType::InstFetch,
                  "DRI i-cache only serves instruction fetches");
    return accessImpl(addr, type);
}

AccessResult
DriICache::accessAt(Addr addr, AccessType type, Cycles now)
{
    drisim_assert(type == AccessType::InstFetch,
                  "DRI i-cache only serves instruction fetches");
    return accessImpl(addr, type, now);
}

void
DriICache::invalidateBlock(Addr addr)
{
    const Addr ba = addr >> mask_.offsetBits();
    const std::uint64_t min_sets = mask_.minSets();
    const std::uint64_t congruent = ba & (min_sets - 1);
    for (std::uint64_t s = congruent; s < mask_.numSets();
         s += min_sets) {
        int way = store_.findWay(s, ba);
        if (way != TagStore::kNoWay) {
            store_.invalidate(s, static_cast<unsigned>(way));
            ++aliasInvalidations_;
        }
    }
}

} // namespace drisim
