/**
 * @file
 * Resizable index-mask arithmetic (shift per divisibility step).
 */

#include "core/size_mask.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace drisim
{

SizeMask::SizeMask(unsigned offsetBits, unsigned minIndexBits,
                   unsigned maxIndexBits)
    : offsetBits_(offsetBits),
      minIndexBits_(minIndexBits),
      maxIndexBits_(maxIndexBits),
      indexBits_(maxIndexBits)
{
    drisim_assert(minIndexBits <= maxIndexBits,
                  "size-bound larger than the cache");
    drisim_assert(maxIndexBits < 58, "index width out of range");
}

bool
SizeMask::shrink(unsigned factor)
{
    drisim_assert(isPowerOf2(factor) && factor >= 2,
                  "divisibility must be a power of two >= 2");
    if (atMinimum())
        return false;
    unsigned step = exactLog2(factor);
    unsigned target = indexBits_ > minIndexBits_ + step
                          ? indexBits_ - step
                          : minIndexBits_;
    indexBits_ = target;
    return true;
}

bool
SizeMask::grow(unsigned factor)
{
    drisim_assert(isPowerOf2(factor) && factor >= 2,
                  "divisibility must be a power of two >= 2");
    if (atMaximum())
        return false;
    unsigned step = exactLog2(factor);
    unsigned target = indexBits_ + step < maxIndexBits_
                          ? indexBits_ + step
                          : maxIndexBits_;
    indexBits_ = target;
    return true;
}

void
SizeMask::setNumSets(std::uint64_t sets)
{
    drisim_assert(isPowerOf2(sets), "set count must be a power of two");
    unsigned bits = exactLog2(sets);
    drisim_assert(bits >= minIndexBits_ && bits <= maxIndexBits_,
                  "set count outside the resizing range");
    indexBits_ = bits;
}

SizeMask
makeSizeMask(const DriParams &params)
{
    params.validate();
    const unsigned offset_bits = exactLog2(params.blockBytes);
    const std::uint64_t set_bytes =
        static_cast<std::uint64_t>(params.blockBytes) * params.assoc;
    const unsigned max_bits =
        exactLog2(params.sizeBytes / set_bytes);
    const unsigned min_bits =
        exactLog2(params.sizeBoundBytes / set_bytes);
    return SizeMask(offset_bits, min_bits, max_bits);
}

} // namespace drisim
