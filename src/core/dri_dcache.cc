/**
 * @file
 * DRI d-cache: load/store access over the shared resize machinery
 * with writeback-before-gating and remap-on-upsize enabled.
 */

#include "core/dri_dcache.hh"

#include "util/logging.hh"

namespace drisim
{

DriDCache::DriDCache(const DriParams &params, MemoryLevel *below,
                     stats::StatGroup *parent)
    : ResizableCache(params, ResizePolicy::writeback(), below, parent,
                     "dri_dcache")
{
}

AccessResult
DriDCache::access(Addr addr, AccessType type)
{
    drisim_assert(type != AccessType::InstFetch,
                  "DRI d-cache serves loads and stores only");
    return accessImpl(addr, type);
}

AccessResult
DriDCache::accessAt(Addr addr, AccessType type, Cycles now)
{
    drisim_assert(type != AccessType::InstFetch,
                  "DRI d-cache serves loads and stores only");
    return accessImpl(addr, type, now);
}

} // namespace drisim
