/**
 * @file
 * DRI d-cache: adds writeback-before-gating and dirty-alias
 * handling on top of the i-cache resize machinery.
 */

#include "core/dri_dcache.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace drisim
{

DriDCache::DriDCache(const DriParams &params, MemoryLevel *below,
                     stats::StatGroup *parent)
    : params_(params),
      below_(below),
      mask_(makeSizeMask(params)),
      controller_(params),
      store_(mask_.maxSets(), params.assoc, params.repl),
      group_(parent, "dri_dcache"),
      accesses_(&group_, "accesses", "data accesses"),
      misses_(&group_, "misses", "data misses"),
      upsizes_(&group_, "upsizes", "interval decisions: upsize"),
      downsizes_(&group_, "downsizes", "interval decisions: downsize"),
      resizeWritebacks_(&group_, "resize_writebacks",
                        "dirty blocks written back by resizing"),
      evictionWritebacks_(&group_, "eviction_writebacks",
                          "dirty blocks written back by eviction"),
      remapInvalidations_(&group_, "remap_invalidations",
                          "blocks invalidated because upsizing "
                          "changed their set index")
{
}

void
DriDCache::writebackBlock(const CacheBlk &blk)
{
    if (below_)
        below_->access(blk.blockAddr << mask_.offsetBits(),
                       AccessType::Store);
}

AccessResult
DriDCache::access(Addr addr, AccessType type)
{
    drisim_assert(type != AccessType::InstFetch,
                  "DRI d-cache serves loads and stores only");
    ++accesses_;

    const Addr ba = addr >> mask_.offsetBits();
    const std::uint64_t set = ba & mask_.mask();

    int way = store_.findWay(set, ba);
    if (way != TagStore::kNoWay) {
        store_.touch(set, static_cast<unsigned>(way));
        if (type == AccessType::Store)
            store_.markDirty(set, static_cast<unsigned>(way));
        return {true, params_.hitLatency};
    }

    ++misses_;
    controller_.recordMiss();
    Cycles latency = params_.hitLatency;
    if (below_)
        latency +=
            below_->access(ba << mask_.offsetBits(), AccessType::Load)
                .latency;

    const CacheBlk evicted = store_.insert(set, ba);
    if (evicted.valid && evicted.dirty) {
        ++evictionWritebacks_;
        writebackBlock(evicted);
    }
    if (type == AccessType::Store) {
        int w = store_.findWay(set, ba);
        drisim_assert(w != TagStore::kNoWay, "fill lost its block");
        store_.markDirty(set, static_cast<unsigned>(w));
    }
    return {false, latency};
}

bool
DriDCache::retireInstructions(InstCount n)
{
    bool resized = false;
    while (controller_.recordInstructions(n)) {
        n = 0;
        ResizeDecision d = controller_.endInterval(mask_.atMinimum(),
                                                   mask_.atMaximum());
        std::uint64_t before = mask_.numSets();
        applyDecision(d);
        resized |= mask_.numSets() != before;
    }
    return resized;
}

void
DriDCache::applyDecision(ResizeDecision decision)
{
    const std::uint64_t sets = mask_.numSets();
    switch (decision) {
      case ResizeDecision::Hold:
        controller_.noteApplied(ResizeDecision::Hold);
        return;
      case ResizeDecision::Downsize: {
        std::uint64_t target = sets / params_.divisibility;
        if (target < mask_.minSets())
            target = mask_.minSets();
        if (target == sets) {
            controller_.noteApplied(ResizeDecision::Hold);
            return;
        }
        ++downsizes_;
        resizeTo(target);
        controller_.noteApplied(ResizeDecision::Downsize);
        return;
      }
      case ResizeDecision::Upsize: {
        std::uint64_t target = sets * params_.divisibility;
        if (target > mask_.maxSets())
            target = mask_.maxSets();
        if (target == sets) {
            controller_.noteApplied(ResizeDecision::Hold);
            return;
        }
        ++upsizes_;
        resizeTo(target);
        controller_.noteApplied(ResizeDecision::Upsize);
        return;
      }
    }
}

void
DriDCache::resizeTo(std::uint64_t newSets)
{
    const std::uint64_t old_sets = mask_.numSets();

    if (newSets < old_sets) {
        // Gating destroys state: every dirty block in the doomed
        // sets must reach the lower level first.
        for (std::uint64_t s = newSets; s < old_sets; ++s) {
            for (unsigned w = 0; w < store_.assoc(); ++w) {
                const CacheBlk &blk = store_.set(s)[w];
                if (blk.valid && blk.dirty) {
                    ++resizeWritebacks_;
                    writebackBlock(blk);
                }
            }
            store_.invalidateSet(s);
        }
        mask_.setNumSets(newSets);
        return;
    }

    // Upsizing: unlike the i-cache, stale aliases are NOT harmless
    // for data. Evict every surviving block whose set index changes
    // under the wider mask.
    mask_.setNumSets(newSets);
    const std::uint64_t new_mask = mask_.mask();
    for (std::uint64_t s = 0; s < old_sets; ++s) {
        for (unsigned w = 0; w < store_.assoc(); ++w) {
            const CacheBlk blk = store_.set(s)[w];
            if (!blk.valid)
                continue;
            if ((blk.blockAddr & new_mask) != s) {
                if (blk.dirty) {
                    ++resizeWritebacks_;
                    writebackBlock(blk);
                }
                store_.invalidate(s, w);
                ++remapInvalidations_;
            }
        }
    }
}

double
DriDCache::activeFraction() const
{
    return static_cast<double>(mask_.numSets()) /
           static_cast<double>(mask_.maxSets());
}

std::uint64_t
DriDCache::currentSizeBytes() const
{
    return mask_.numSets() *
           static_cast<std::uint64_t>(params_.blockBytes) *
           params_.assoc;
}

void
DriDCache::invalidateAll()
{
    for (std::uint64_t s = 0; s < mask_.numSets(); ++s) {
        for (unsigned w = 0; w < store_.assoc(); ++w) {
            const CacheBlk &blk = store_.set(s)[w];
            if (blk.valid && blk.dirty) {
                ++resizeWritebacks_;
                writebackBlock(blk);
            }
        }
    }
    store_.invalidateAll();
}

double
DriDCache::missRate() const
{
    return accesses_.value() == 0
               ? 0.0
               : static_cast<double>(misses_.value()) /
                     static_cast<double>(accesses_.value());
}

void
DriDCache::integrateCycles(Cycles delta)
{
    activeSetCycles_ += static_cast<double>(mask_.numSets()) *
                        static_cast<double>(delta);
    integratedCycles_ += delta;
}

double
DriDCache::averageActiveFraction() const
{
    if (integratedCycles_ == 0)
        return activeFraction();
    return activeSetCycles_ /
           (static_cast<double>(mask_.maxSets()) *
            static_cast<double>(integratedCycles_));
}

bool
DriDCache::mappingConsistent() const
{
    const std::uint64_t m = mask_.mask();
    for (std::uint64_t s = 0; s < mask_.numSets(); ++s) {
        for (unsigned w = 0; w < store_.assoc(); ++w) {
            const CacheBlk &blk = store_.set(s)[w];
            if (blk.valid && (blk.blockAddr & m) != s)
                return false;
        }
    }
    return true;
}

} // namespace drisim
