/**
 * @file
 * Configuration of the Dynamically ResIzable i-cache (Section 2.1).
 */

#ifndef DRISIM_CORE_DRI_PARAMS_HH
#define DRISIM_CORE_DRI_PARAMS_HH

#include <cstdint>

#include "mem/repl_policy.hh"
#include "util/types.hh"

namespace drisim
{

/**
 * All DRI i-cache knobs. The paper's key parameters are missBound
 * and sizeBoundBytes (fine- and coarse-grain miss-rate control);
 * senseInterval and divisibility are secondary (Section 5.6).
 */
struct DriParams
{
    /** Base (maximum) capacity in bytes. */
    std::uint64_t sizeBytes = 64 * 1024;
    /** Set associativity (1 = direct-mapped, as in the base config). */
    unsigned assoc = 1;
    /** Block (line) size in bytes. */
    unsigned blockBytes = 32;
    /** Hit latency in cycles. */
    Cycles hitLatency = 1;
    ReplPolicy repl = ReplPolicy::LRU;

    /**
     * Minimum capacity the cache may downsize to, bytes
     * ("size-bound"). Determines the number of resizing tag bits.
     */
    std::uint64_t sizeBoundBytes = 1024;

    /**
     * Miss-count threshold per sense interval ("miss-bound"):
     * more misses than this -> downsize, fewer -> upsize.
     */
    std::uint64_t missBound = 100;

    /** Sense-interval length in dynamic instructions. */
    InstCount senseInterval = 100 * 1000;

    /** Resizing factor per step (2 = halve/double). */
    unsigned divisibility = 2;

    /** Width of the oscillation-detecting saturating counter. */
    unsigned throttleBits = 3;

    /**
     * Intervals for which downsizing stays disabled once the
     * throttle triggers (paper: ten sense-intervals).
     */
    unsigned throttleHoldIntervals = 10;

    /** Master enable: false freezes the cache at sizeBytes. */
    bool adaptive = true;

    /** MSHR entries; 0 keeps the historical blocking miss path. */
    unsigned mshrs = 0;

    /** Number of resizing tag bits implied by the size-bound. */
    unsigned resizingTagBits() const;

    /** Sanity-check the parameter combination (fatal on bad input). */
    void validate() const;
};

} // namespace drisim

#endif // DRISIM_CORE_DRI_PARAMS_HH
