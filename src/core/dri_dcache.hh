/**
 * @file
 * A Dynamically ResIzable data cache — the extension the paper
 * explicitly defers ("Because of complications involving dirty
 * cache blocks, studying d-cache designs is beyond the scope of
 * this paper", Section 2).
 *
 * Two complications distinguish the d-cache from the i-cache, both
 * captured by ResizePolicy::writeback() in the shared
 * ResizableCache layer (mem/resizable_cache.hh):
 *
 *  1. **Dirty blocks.** Gating a set's supply destroys its state,
 *     so every dirty block in a set being disabled must be written
 *     back to the lower level *before* the rail drops. Downsizing
 *     therefore has a real traffic cost, which this model counts
 *     (and which the resize controller's interval spacing
 *     amortizes).
 *  2. **No harmless aliases.** The i-cache tolerates stale aliases
 *     after upsizing because instruction memory is read-only; a
 *     d-cache cannot, or a store to the new location would leave a
 *     stale copy that later lookups could hit. On every resize the
 *     cache therefore *invalidates* (after writeback) any block
 *     whose set index changes with the new mask, i.e. blocks whose
 *     index bits above the minimum differ — the same
 *     remap-or-flush choice the paper discusses and rejects for
 *     the i-cache; here it is mandatory for correctness.
 *
 * Everything else (size mask, miss-bound/size-bound controller,
 * throttling, resizing tag bits, gated-Vdd leakage semantics)
 * is the shared machinery.
 */

#ifndef DRISIM_CORE_DRI_DCACHE_HH
#define DRISIM_CORE_DRI_DCACHE_HH

#include <cstdint>

#include "mem/resizable_cache.hh"

namespace drisim
{

/** A resizable write-back, write-allocate data cache. */
class DriDCache : public ResizableCache
{
  public:
    DriDCache(const DriParams &params, MemoryLevel *below,
              stats::StatGroup *parent);

    /** Load or Store access (instruction fetches are rejected). */
    AccessResult access(Addr addr, AccessType type) override;
    AccessResult accessAt(Addr addr, AccessType type,
                          Cycles now) override;
};

} // namespace drisim

#endif // DRISIM_CORE_DRI_DCACHE_HH
