/**
 * @file
 * A Dynamically ResIzable data cache — the extension the paper
 * explicitly defers ("Because of complications involving dirty
 * cache blocks, studying d-cache designs is beyond the scope of
 * this paper", Section 2).
 *
 * Two complications distinguish the d-cache from the i-cache:
 *
 *  1. **Dirty blocks.** Gating a set's supply destroys its state,
 *     so every dirty block in a set being disabled must be written
 *     back to the lower level *before* the rail drops. Downsizing
 *     therefore has a real traffic cost, which this model counts
 *     (and which the resize controller's interval spacing
 *     amortizes).
 *  2. **No harmless aliases.** The i-cache tolerates stale aliases
 *     after upsizing because instruction memory is read-only; a
 *     d-cache cannot, or a store to the new location would leave a
 *     stale copy that later lookups could hit. On every resize the
 *     cache therefore *invalidates* (after writeback) any block
 *     whose set index changes with the new mask, i.e. blocks whose
 *     index bits above the minimum differ — the same
 *     remap-or-flush choice the paper discusses and rejects for
 *     the i-cache; here it is mandatory for correctness.
 *
 * Everything else (size mask, miss-bound/size-bound controller,
 * throttling, resizing tag bits, gated-Vdd leakage semantics)
 * is shared with the i-cache design.
 */

#ifndef DRISIM_CORE_DRI_DCACHE_HH
#define DRISIM_CORE_DRI_DCACHE_HH

#include <cstdint>

#include "mem/memory.hh"
#include "mem/tag_store.hh"
#include "stats/stats.hh"
#include "core/dri_params.hh"
#include "core/resize_controller.hh"
#include "core/size_mask.hh"

namespace drisim
{

/** A resizable write-back, write-allocate data cache. */
class DriDCache : public MemoryLevel
{
  public:
    DriDCache(const DriParams &params, MemoryLevel *below,
              stats::StatGroup *parent);

    /** Load or Store access (instruction fetches are rejected). */
    AccessResult access(Addr addr, AccessType type) override;

    /** Account retired instructions; may trigger a resize. */
    bool retireInstructions(InstCount n);

    double activeFraction() const override;
    std::uint64_t currentSets() const { return mask_.numSets(); }
    std::uint64_t currentSizeBytes() const;

    /** Write back everything dirty, then invalidate. */
    void invalidateAll() override;

    const DriParams &params() const { return params_; }
    const ResizeController &controller() const { return controller_; }

    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    double missRate() const;
    std::uint64_t upsizes() const { return upsizes_.value(); }
    std::uint64_t downsizes() const { return downsizes_.value(); }

    /** Dirty blocks written back because their set was gated off
     *  or their index was remapped by a resize. */
    std::uint64_t resizeWritebacks() const
    {
        return resizeWritebacks_.value();
    }

    /** Ordinary dirty-eviction writebacks. */
    std::uint64_t evictionWritebacks() const
    {
        return evictionWritebacks_.value();
    }

    void integrateCycles(Cycles delta);
    double averageActiveFraction() const;

    /**
     * Verification hook: true iff no reachable frame holds a block
     * whose current-mask index differs from the set it sits in
     * (the invariant that makes d-cache resizing safe).
     */
    bool mappingConsistent() const;

  private:
    void applyDecision(ResizeDecision decision);
    void resizeTo(std::uint64_t newSets);
    void writebackBlock(const CacheBlk &blk);

    DriParams params_;
    MemoryLevel *below_;
    SizeMask mask_;
    ResizeController controller_;
    TagStore store_;

    double activeSetCycles_ = 0.0;
    Cycles integratedCycles_ = 0;

    stats::StatGroup group_;
    stats::Scalar accesses_;
    stats::Scalar misses_;
    stats::Scalar upsizes_;
    stats::Scalar downsizes_;
    stats::Scalar resizeWritebacks_;
    stats::Scalar evictionWritebacks_;
    stats::Scalar remapInvalidations_;
};

} // namespace drisim

#endif // DRISIM_CORE_DRI_DCACHE_HH
