/**
 * @file
 * Miss-bound / throttle FSM: interval accounting and the
 * upsize/downsize/hold decision.
 */

#include "core/resize_controller.hh"

#include "util/logging.hh"

namespace drisim
{

ResizeController::ResizeController(const DriParams &params)
    : params_(params),
      throttleMax_((1u << params.throttleBits) - 1),
      // MSB-set rule: trigger at half scale of the counter.
      throttleTrigger_(1u << (params.throttleBits - 1))
{
    drisim_assert(params.throttleBits >= 1 && params.throttleBits <= 8,
                  "throttle counter width out of range");
    drisim_assert(params.senseInterval > 0,
                  "sense interval must be positive");
}

bool
ResizeController::recordInstructions(InstCount n)
{
    instrsIntoInterval_ += n;
    if (instrsIntoInterval_ < params_.senseInterval)
        return false;
    instrsIntoInterval_ -= params_.senseInterval;
    return true;
}

ResizeDecision
ResizeController::endInterval(bool atMin, bool atMax)
{
    ++intervals_;
    const std::uint64_t misses = missCount_;
    missCount_ = 0;

    if (freezeRemaining_ > 0)
        --freezeRemaining_;

    if (!params_.adaptive)
        return ResizeDecision::Hold;

    // Figure 1: fewer misses than the miss-bound means the working
    // set fits with slack -> downsize to save leakage; more misses
    // means the cache is too small -> upsize to recover performance.
    if (misses < params_.missBound) {
        if (atMin || downsizeFrozen())
            return ResizeDecision::Hold;
        return ResizeDecision::Downsize;
    }
    if (misses > params_.missBound) {
        if (atMax)
            return ResizeDecision::Hold;
        return ResizeDecision::Upsize;
    }
    return ResizeDecision::Hold;
}

void
ResizeController::noteApplied(ResizeDecision applied)
{
    // Oscillation: this resize undoes the previous one (an upsize
    // right after a downsize or vice versa between adjacent sizes).
    const bool reversal =
        (applied == ResizeDecision::Upsize &&
         lastApplied_ == ResizeDecision::Downsize) ||
        (applied == ResizeDecision::Downsize &&
         lastApplied_ == ResizeDecision::Upsize);

    if (applied != ResizeDecision::Hold) {
        if (reversal) {
            if (throttleCounter_ < throttleMax_)
                ++throttleCounter_;
            if (throttleCounter_ >= throttleTrigger_) {
                freezeRemaining_ = params_.throttleHoldIntervals;
                throttleCounter_ = 0;
                ++throttleEvents_;
            }
        } else if (throttleCounter_ > 0) {
            --throttleCounter_;
        }
        lastApplied_ = applied;
    }
}

} // namespace drisim
