/**
 * @file
 * DRI parameter validation and derived quantities (shared by every
 * resizable cache level, not just the L1 i-cache).
 */

#include "core/dri_params.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace drisim
{

unsigned
DriParams::resizingTagBits() const
{
    return exactLog2(sizeBytes / sizeBoundBytes);
}

void
DriParams::validate() const
{
    if (!isPowerOf2(sizeBytes) || !isPowerOf2(blockBytes) ||
        !isPowerOf2(sizeBoundBytes))
        drisim_fatal("DRI sizes must be powers of two");
    if (sizeBoundBytes > sizeBytes)
        drisim_fatal("size-bound exceeds the cache size");
    if (sizeBoundBytes <
        static_cast<std::uint64_t>(blockBytes) * assoc)
        drisim_fatal("size-bound smaller than one set");
    if (!isPowerOf2(divisibility) || divisibility < 2)
        drisim_fatal("divisibility must be a power of two >= 2");
    if (senseInterval == 0)
        drisim_fatal("sense interval must be positive");
}

} // namespace drisim
